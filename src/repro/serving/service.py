"""CrowdService: long-lived truth inference over many label streams.

The ROADMAP's north-star scenario made concrete: one process owns the
streaming inference state of many datasets, absorbs interleaved
``partial_fit(dataset_id, batch)`` updates and ``query(dataset_id)``
posterior reads, survives restarts, and bounds resident memory. The
service is a thin ownership layer — all statistics live in the
:mod:`repro.inference.streaming` estimators (any ``"streaming"`` registry
method); the service adds exactly four behaviors:

* **State ownership** — one estimator per dataset, created on first
  ``partial_fit`` (or explicitly via :meth:`CrowdService.create_dataset`)
  with the service's method + constructor overrides. The configuration is
  recorded in every checkpoint, so a restarted service resumes each
  dataset under the configuration it was actually trained with.
* **Snapshot semantics** — queries see the last *completed* update. Each
  dataset has a lock serializing updates/recomputation, and a versioned
  ``(version, result)`` snapshot swapped in atomically: a query landing
  mid-update is answered from the previous completed version (no torn
  reads of half-ingested statistics), and repeated queries between
  updates are O(1) cache hits.
* **Checkpoints + replay cursor** — :meth:`CrowdService.checkpoint`
  serializes the estimator's sufficient statistics
  (:meth:`~repro.inference.streaming.StreamingTruthInference.get_state`)
  plus the retained crowd (a :class:`~repro.crowd.sharding.
  SparseLabelShard` file) via :mod:`repro.serving.state`. The state's
  ``updates`` counter is the replay cursor: :meth:`CrowdService.cursor`
  tells a label source how many batches were durably applied, and
  replaying the tail after a restore reproduces the uninterrupted stream
  exactly (the recovery contract — pinned by
  ``tests/serving/test_recovery.py`` and gated in the serving bench).
* **Eviction** — with ``max_resident`` set, cold datasets (LRU by
  last-touch) are checkpointed and dropped from memory; the next touch
  rehydrates them transparently from disk. Disk is the source of truth
  for evicted datasets, so eviction is also what bounds recovery loss:
  an evicted dataset loses nothing on a crash.

Dataset ids are path-safe names (``[A-Za-z0-9][A-Za-z0-9._-]*``); each
dataset checkpoints under ``root/<dataset_id>/``.
"""

from __future__ import annotations

import itertools
import re
import threading
from pathlib import Path

from ..inference import get_method
from ..inference.base import InferenceResult
from .state import load_crowd, load_stream_state, save_crowd, save_stream_state

__all__ = ["CrowdService"]

_DATASET_ID = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]*$")
_STATE_FILE = "state.npz"
_CROWD_FILE = "crowd.shard"
_METHOD_KEY = "service_method"
_OVERRIDE_PREFIX = "override__"


class _DatasetEntry:
    """Per-dataset slot: estimator (when resident), lock, snapshot, LRU tick."""

    __slots__ = (
        "dataset_id", "method", "overrides", "lock", "stream",
        "snapshot", "version", "last_touch", "dirty",
    )

    def __init__(self, dataset_id: str, method: str | None, overrides: dict) -> None:
        self.dataset_id = dataset_id
        self.method = method              # None until the checkpoint is read
        self.overrides = dict(overrides)
        self.lock = threading.Lock()
        self.stream = None                # StreamingTruthInference | None (cold)
        self.snapshot: tuple[int, InferenceResult] | None = None
        self.version = 0                  # completed updates (replay cursor)
        self.last_touch = 0
        self.dirty = False                # updates newer than the checkpoint


class CrowdService:
    """Serve streaming truth inference for many datasets (see module docs).

    Parameters
    ----------
    root:
        Checkpoint directory. Datasets already checkpointed under it are
        discovered at construction and resume from disk on first touch.
    method:
        ``"streaming"`` registry name used for new datasets (default DS).
    max_resident:
        Resident-dataset budget; ``None`` means never evict.
    method_overrides:
        Constructor overrides for new datasets' estimators (e.g.
        ``decay=0.6``, ``inner_sweeps=1``). Values must be scalars so the
        configuration can ride inside the checkpoint file.
    """

    def __init__(
        self,
        root,
        method: str = "DS",
        max_resident: int | None = None,
        **method_overrides,
    ) -> None:
        if max_resident is not None and max_resident < 1:
            raise ValueError(f"max_resident must be at least 1, got {max_resident}")
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.method = method
        self.method_overrides = dict(method_overrides)
        self.max_resident = max_resident
        # The snapshot contract (see class docs) holds only while every
        # touch of the registry/LRU state stays under _lock; the
        # guarded-by markers are enforced by the lock-discipline lint.
        self._lock = threading.Lock()
        self._entries: dict[str, _DatasetEntry] = {}  # guarded-by: _lock
        self._clock = itertools.count(1)              # guarded-by: _lock
        self.stats = {"evictions": 0, "rehydrations": 0, "checkpoints": 0}  # guarded-by: _lock
        for child in sorted(self.root.iterdir()):
            if (child / _STATE_FILE).is_file() and _DATASET_ID.match(child.name):
                self._entries[child.name] = _DatasetEntry(child.name, None, {})

    # -- registry ------------------------------------------------------- #
    def _entry(self, dataset_id: str, create: bool) -> _DatasetEntry:
        with self._lock:
            entry = self._entries.get(dataset_id)
            if entry is None:
                if not create:
                    known = ", ".join(sorted(self._entries)) or "none"
                    raise KeyError(f"unknown dataset {dataset_id!r} (known: {known})")
                if not _DATASET_ID.match(dataset_id):
                    raise ValueError(
                        f"dataset id {dataset_id!r} is not path-safe "
                        "(need [A-Za-z0-9][A-Za-z0-9._-]*)"
                    )
                entry = _DatasetEntry(dataset_id, self.method, self.method_overrides)
                self._entries[dataset_id] = entry
            entry.last_touch = next(self._clock)
            return entry

    def datasets(self) -> tuple[str, ...]:
        """Every known dataset id (resident or checkpointed), sorted."""
        with self._lock:
            return tuple(sorted(self._entries))

    def resident_datasets(self) -> tuple[str, ...]:
        """Ids currently holding in-memory estimator state, sorted."""
        with self._lock:
            return tuple(
                sorted(name for name, entry in self._entries.items() if entry.stream is not None)
            )

    # -- residency ------------------------------------------------------ #
    def _dataset_dir(self, dataset_id: str) -> Path:
        return self.root / dataset_id

    def _ensure_resident(self, entry: _DatasetEntry) -> None:
        """Rehydrate (or freshly create) the estimator; entry.lock held."""
        if entry.stream is not None:
            return
        state_path = self._dataset_dir(entry.dataset_id) / _STATE_FILE
        if state_path.is_file():
            state = load_stream_state(state_path)
            method = state.pop(_METHOD_KEY, entry.method or self.method)
            overrides = {
                key[len(_OVERRIDE_PREFIX):]: value
                for key, value in state.items()
                if key.startswith(_OVERRIDE_PREFIX)
            }
            for key in list(state):
                if key.startswith(_OVERRIDE_PREFIX):
                    del state[key]
            crowd_path = self._dataset_dir(entry.dataset_id) / _CROWD_FILE
            crowd = load_crowd(crowd_path) if crowd_path.is_file() else None
            stream = get_method(method, kind="streaming", **overrides)
            stream.set_state(state, crowd)
            entry.stream = stream
            entry.method = method
            entry.overrides = overrides
            entry.version = stream.updates
            entry.dirty = False
            with self._lock:
                self.stats["rehydrations"] += 1
        else:
            entry.method = entry.method or self.method
            entry.stream = get_method(entry.method, kind="streaming", **entry.overrides)
            entry.version = 0
            entry.dirty = False

    # -- the serving surface -------------------------------------------- #
    def create_dataset(self, dataset_id: str, method: str | None = None, **overrides) -> str:
        """Register a dataset explicitly (optionally off-default config).

        ``partial_fit`` creates datasets implicitly with the service
        defaults; this is the hook for per-dataset method/configuration.
        Re-creating a known dataset raises.
        """
        with self._lock:
            if dataset_id in self._entries:
                raise ValueError(f"dataset {dataset_id!r} already exists")
            if not _DATASET_ID.match(dataset_id):
                raise ValueError(
                    f"dataset id {dataset_id!r} is not path-safe "
                    "(need [A-Za-z0-9][A-Za-z0-9._-]*)"
                )
            chosen = dict(self.method_overrides) if method is None and not overrides else dict(overrides)
            entry = _DatasetEntry(dataset_id, method or self.method, chosen)
            entry.last_touch = next(self._clock)
            self._entries[dataset_id] = entry
        return dataset_id

    def partial_fit(self, dataset_id: str, batch) -> dict:
        """Apply one update; returns the post-update cursor (completed updates).

        Creates the dataset on first touch. The per-dataset lock makes
        the update atomic with respect to queries: until ``partial_fit``
        returns, queries are answered from the previous completed
        version. A batch the estimator rejects leaves the dataset
        exactly as it was (the streaming layer validates before
        mutating).
        """
        entry = self._entry(dataset_id, create=True)
        with entry.lock:
            self._ensure_resident(entry)
            entry.stream.partial_fit(batch)
            entry.version = entry.stream.updates
            entry.dirty = True
            ack = {
                "dataset_id": dataset_id,
                "updates": entry.version,
                "observations_seen": entry.stream.observations_seen,
            }
        self._maybe_evict(keep=entry)
        return ack

    def query(self, dataset_id: str, refresh: bool = False) -> InferenceResult:
        """Posterior over everything the dataset's stream has seen.

        Snapshot semantics: the result always reflects the last
        *completed* update. Between updates, repeated ``refresh=False``
        queries return the cached snapshot (O(1)); ``refresh=True``
        recomputes under the current annotator model every call (the
        streaming layer keeps refresh side-effect-free, so it never
        disturbs the ingest-time posteriors the snapshot serves).
        Unknown datasets raise ``KeyError``.
        """
        entry = self._entry(dataset_id, create=False)
        if not refresh:
            snapshot = entry.snapshot
            if snapshot is not None and snapshot[0] == entry.version:
                return snapshot[1]
        with entry.lock:
            self._ensure_resident(entry)
            result = entry.stream.result(refresh=refresh)
            if not refresh:
                # published: frozen once stored — readers hit it lock-free,
                # so no one may mutate `result` (or an alias) past this
                # point; the publish-escape lint rule enforces exactly that.
                entry.snapshot = (entry.version, result)
        self._maybe_evict(keep=entry)
        return result

    def cursor(self, dataset_id: str) -> int:
        """Replay cursor: completed updates applied for this dataset.

        For a cold dataset this reads the checkpoint header instead of
        rehydrating. A label source resuming after a restart feeds
        batches ``cursor(id)`` onward — the recovery contract guarantees
        the result matches the uninterrupted stream.
        """
        with self._lock:
            entry = self._entries.get(dataset_id)
        if entry is None:
            raise KeyError(f"unknown dataset {dataset_id!r}")
        with entry.lock:
            if entry.stream is not None:
                return entry.version
            state_path = self._dataset_dir(dataset_id) / _STATE_FILE
            if state_path.is_file():
                return int(load_stream_state(state_path)["updates"])
            return 0

    # -- durability ------------------------------------------------------ #
    def checkpoint(self, dataset_id: str | None = None) -> dict:
        """Serialize state + crowd + cursor to ``root/<id>/`` (all ids by default).

        Returns ``{dataset_id: cursor}``. Already-clean datasets (cold,
        or resident with no updates since the last checkpoint) are not
        rewritten.
        """
        targets = self.datasets() if dataset_id is None else (dataset_id,)
        cursors = {}
        for target in targets:
            with self._lock:
                entry = self._entries.get(target)
            if entry is None:
                raise KeyError(f"unknown dataset {target!r}")
            with entry.lock:
                cursors[target] = self._checkpoint_locked(entry)
        return cursors

    def _checkpoint_locked(self, entry: _DatasetEntry) -> int:
        """Write the checkpoint if needed; returns the durable cursor."""
        state_path = self._dataset_dir(entry.dataset_id) / _STATE_FILE
        if entry.stream is None:
            # Cold datasets: the on-disk checkpoint already IS the state.
            if state_path.is_file():
                return int(load_stream_state(state_path)["updates"])
            self._ensure_resident(entry)  # registered but never fed
        elif not entry.dirty and state_path.is_file():
            return entry.version
        state = entry.stream.get_state()
        state[_METHOD_KEY] = entry.method
        for key, value in entry.overrides.items():
            state[_OVERRIDE_PREFIX + key] = value
        directory = self._dataset_dir(entry.dataset_id)
        directory.mkdir(parents=True, exist_ok=True)
        save_stream_state(directory / _STATE_FILE, state)
        if entry.stream.crowd is not None:
            save_crowd(directory / _CROWD_FILE, entry.stream.crowd)
        entry.dirty = False
        with self._lock:
            self.stats["checkpoints"] += 1
        return entry.version

    def evict(self, dataset_id: str) -> bool:
        """Checkpoint (if dirty) and drop a dataset's in-memory state.

        Returns True if the dataset was resident. The next touch
        rehydrates it transparently from the checkpoint.
        """
        with self._lock:
            entry = self._entries.get(dataset_id)
        if entry is None:
            raise KeyError(f"unknown dataset {dataset_id!r}")
        with entry.lock:
            return self._evict_locked(entry)

    def _evict_locked(self, entry: _DatasetEntry) -> bool:
        if entry.stream is None:
            return False
        if entry.dirty:
            self._checkpoint_locked(entry)
        entry.stream = None
        entry.snapshot = None
        with self._lock:
            self.stats["evictions"] += 1
        return True

    def _maybe_evict(self, keep: _DatasetEntry | None = None) -> None:
        """Enforce the resident budget (LRU by last-touch)."""
        if self.max_resident is None:
            return
        while True:
            with self._lock:
                resident = [
                    entry for entry in self._entries.values() if entry.stream is not None
                ]
                if len(resident) <= self.max_resident:
                    return
                candidates = [entry for entry in resident if entry is not keep]
                if not candidates:
                    return
                victim = min(candidates, key=lambda entry: entry.last_touch)
            with victim.lock:
                self._evict_locked(victim)

    def close(self) -> None:
        """Checkpoint every dirty resident dataset (estimators stay resident)."""
        for dataset_id in self.datasets():
            with self._lock:
                entry = self._entries.get(dataset_id)
            if entry is None:
                continue
            with entry.lock:
                if entry.stream is not None and entry.dirty:
                    self._checkpoint_locked(entry)

    def __enter__(self) -> "CrowdService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
