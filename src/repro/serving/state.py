"""Checkpoint codec: streaming state dicts and retained crowds on disk.

A :class:`~repro.inference.streaming.StreamingTruthInference` checkpoint
has two parts with very different shapes, so they get two files:

* the **learned state** — the flat dict :meth:`~repro.inference.streaming.
  StreamingTruthInference.get_state` returns (scalars, None, and float64
  arrays). :func:`save_stream_state` writes it as an ``.npz`` archive,
  one member per key; scalars become 0-d arrays and decode back via
  ``.item()``, ``None`` values are recorded by key name in a
  ``__none_keys__`` member (``np.savez`` cannot hold None without
  pickling, and these files must stay ``allow_pickle=False``). float64
  arrays round-trip bit-exactly, which is what makes restored streams
  replay-identical to uninterrupted ones.
* the **retained crowd** — dominated by label triples, so it reuses the
  durable shard format: :func:`save_crowd` writes any crowd container as
  a :class:`~repro.crowd.sharding.SparseLabelShard` header+COO file and
  :func:`load_crowd` densifies it back via
  :meth:`~repro.crowd.sharding.SparseLabelShard.to_matrix`.

Both writers go through a temp file + ``os.replace``, so a crash during
checkpointing leaves the previous checkpoint intact (recovery reads
either the old complete checkpoint or the new complete one, never a
torn file).
"""

from __future__ import annotations

import os

import numpy as np

from ..crowd.sharding import SparseLabelShard, as_sparse_shard
from ..crowd.types import CrowdLabelMatrix

__all__ = [
    "save_stream_state",
    "load_stream_state",
    "save_crowd",
    "load_crowd",
]

_NONE_KEYS = "__none_keys__"


def save_stream_state(path, state: dict) -> str:
    """Write a ``get_state()`` dict as an ``.npz`` archive (atomically)."""
    path = str(path)
    none_keys = sorted(key for key, value in state.items() if value is None)
    payload = {}
    for key, value in state.items():
        if key == _NONE_KEYS:
            raise ValueError(f"{_NONE_KEYS!r} is reserved for the codec")
        if value is None:
            continue
        payload[key] = np.asarray(value)
    payload[_NONE_KEYS] = np.asarray(none_keys, dtype=np.str_)
    tmp = path + ".tmp"
    with open(tmp, "wb") as stream:
        np.savez(stream, **payload)
    os.replace(tmp, path)
    return path


def load_stream_state(path) -> dict:
    """Read a :func:`save_stream_state` archive back into a state dict."""
    with np.load(str(path), allow_pickle=False) as payload:
        if _NONE_KEYS not in payload.files:
            raise ValueError(f"{path} is not a stream-state file (no {_NONE_KEYS})")
        state: dict = {str(key): None for key in payload[_NONE_KEYS]}
        for key in payload.files:
            if key == _NONE_KEYS:
                continue
            value = payload[key]
            state[key] = value.item() if value.ndim == 0 else value
    return state


def save_crowd(path, crowd) -> str:
    """Write any crowd container as a shard file (atomically).

    Accepts whatever :func:`~repro.crowd.sharding.as_sparse_shard` does —
    in the serving layer that is the stream's retained
    :class:`~repro.crowd.types.CrowdLabelMatrix`.
    """
    path = str(path)
    if path.endswith(".npz"):
        # The shard writer switches to an eager zip layout on .npz, and
        # the temp-file suffix below would silently flip it back.
        raise ValueError("crowd checkpoints use the header+COO layout; drop the .npz suffix")
    tmp = path + ".tmp"
    as_sparse_shard(crowd).save(tmp)
    os.replace(tmp, path)
    return path


def load_crowd(path) -> CrowdLabelMatrix:
    """Load a :func:`save_crowd` file back into a dense label container."""
    return SparseLabelShard.load(str(path), mmap=False).to_matrix()
