"""Serving layer: long-lived, checkpointed truth inference over label streams.

* :mod:`repro.serving.service` — :class:`CrowdService`: per-dataset
  streaming state ownership, snapshot-consistent queries, checkpoints
  with a replay cursor, LRU eviction of cold datasets to shard files.
* :mod:`repro.serving.state` — the checkpoint codec (``.npz`` state
  archives + :class:`~repro.crowd.sharding.SparseLabelShard` crowd files).
* :mod:`repro.serving.workload` — bursty many-dataset schedules built
  from the streaming suite's generators, for benches and examples.
"""

from .service import CrowdService
from .state import load_crowd, load_stream_state, save_crowd, save_stream_state
from .workload import ServingEvent, ServingWorkload, build_serving_workload

__all__ = [
    "CrowdService",
    "ServingEvent",
    "ServingWorkload",
    "build_serving_workload",
    "save_stream_state",
    "load_stream_state",
    "save_crowd",
    "load_crowd",
]
