"""Reproduction of "Learning from Noisy Crowd Labels with Logics" (ICDE 2023).

Subpackages
-----------
``repro.autodiff``
    Pure-NumPy reverse-mode autodiff engine + NN layers + optimizers.
``repro.logic``
    Probabilistic soft logic, task rules, and the Eq. 14/15 distillation.
``repro.crowd``
    Crowd-label containers, simulators, annotator statistics.
``repro.data``
    Synthetic corpora, vocabularies, prototype embeddings, batching.
``repro.inference``
    Truth-inference baselines (MV, DS, GLAD, PM, CATD, IBCC, HMM-Crowd,
    BSC-seq).
``repro.models``
    Kim-CNN, CNN+GRU tagger, bag-of-embeddings classifiers.
``repro.baselines``
    LNCL competitors (two-stage, Raykar/AggNet, CrowdLayer, DL-DN, Gold).
``repro.core``
    Logic-LNCL — the paper's contribution.
``repro.eval``
    Accuracy, strict span F1, statistics, reliability recovery.
``repro.serving``
    CrowdService: checkpointed streaming truth inference over many
    datasets (snapshot queries, replay-cursor recovery, LRU eviction).

Quickstart
----------
>>> import numpy as np
>>> from repro.data import make_sentiment_task, SentimentCorpusConfig
>>> from repro.crowd import sample_annotator_pool, simulate_classification_crowd
>>> from repro.models import TextCNN, TextCNNConfig
>>> from repro.logic import ButRule
>>> from repro.core import LogicLNCLClassifier, sentiment_paper_config
>>> rng = np.random.default_rng(0)
>>> task = make_sentiment_task(rng, SentimentCorpusConfig(num_train=200, num_dev=50, num_test=50))
>>> pool = sample_annotator_pool(rng, 20, 2)
>>> task.train.crowd = simulate_classification_crowd(rng, task.train.labels, pool)
>>> model = TextCNN(task.embeddings, TextCNNConfig(feature_maps=16), rng)
>>> trainer = LogicLNCLClassifier(model, sentiment_paper_config(epochs=5), rng,
...                               rule=ButRule(task.but_id))
>>> _ = trainer.fit(task.train, dev=task.dev)
>>> predictions = trainer.predict_teacher(task.test.tokens, task.test.lengths)
"""

__version__ = "1.0.0"

from . import (
    autodiff,
    baselines,
    core,
    crowd,
    data,
    eval,
    inference,
    logic,
    models,
    noisy_labels,
    serving,
    weak_supervision,
)

__all__ = [
    "autodiff",
    "logic",
    "crowd",
    "data",
    "inference",
    "models",
    "baselines",
    "core",
    "eval",
    "serving",
    "weak_supervision",
    "noisy_labels",
    "__version__",
]
