"""Synthetic "pre-trained" word embeddings (substitution S3 in DESIGN.md).

The paper feeds its networks 300-d word2vec/GloVe vectors, which matter only
as *label-correlated input features*: sentiment-bearing words cluster by
polarity, entity names cluster by type. Offline we reproduce that structure
directly: every vocabulary word is assigned a latent semantic role, each
role has a Gaussian prototype vector, and a word's embedding is its role
prototype (or a mixture, for ambiguous words) plus isotropic noise. The
noise-to-separation ratio controls task difficulty and is calibrated so the
Gold classifier lands in a realistic accuracy band rather than at 100%.
"""

from __future__ import annotations

import numpy as np

__all__ = ["PrototypeEmbeddings"]


class PrototypeEmbeddings:
    """Factory for role-structured embedding matrices.

    Parameters
    ----------
    dim:
        Embedding dimensionality (paper: 300; scaled down in benches).
    noise_scale:
        Std of the per-word noise added to the role prototype, in units of
        the prototype norm (≈1). Around 0.8–1.2 yields realistically
        imperfect classifiers.
    rng:
        Generator for prototypes and noise.
    """

    def __init__(self, dim: int, noise_scale: float, rng: np.random.Generator) -> None:
        if dim < 2:
            raise ValueError(f"embedding dim must be >= 2, got {dim}")
        if noise_scale < 0:
            raise ValueError(f"noise scale must be non-negative, got {noise_scale}")
        self.dim = dim
        self.noise_scale = noise_scale
        self._rng = rng
        self._prototypes: dict[str, np.ndarray] = {}

    def prototype(self, role: str) -> np.ndarray:
        """Unit-norm prototype vector of a semantic role (created lazily)."""
        existing = self._prototypes.get(role)
        if existing is not None:
            return existing
        vector = self._rng.normal(size=self.dim)
        vector /= np.linalg.norm(vector)
        self._prototypes[role] = vector
        return vector

    def opposed_prototypes(self, role_a: str, role_b: str, anticorrelation: float = 0.6) -> None:
        """Create two partially anti-correlated prototypes (e.g. pos/neg).

        ``b = -anticorrelation · a + sqrt(1 - anticorrelation²) · orthogonal``,
        mimicking the antonym geometry of real embedding spaces.
        """
        if not 0.0 <= anticorrelation <= 1.0:
            raise ValueError(f"anticorrelation must be in [0, 1], got {anticorrelation}")
        a = self.prototype(role_a)
        raw = self._rng.normal(size=self.dim)
        orthogonal = raw - (raw @ a) * a
        orthogonal /= np.linalg.norm(orthogonal)
        b = -anticorrelation * a + np.sqrt(1.0 - anticorrelation**2) * orthogonal
        self._prototypes[role_b] = b / np.linalg.norm(b)

    def vector(self, roles: str | list[str]) -> np.ndarray:
        """Embedding of one word: mean of its role prototypes plus noise.

        A single role gives a clean cluster member; multiple roles model
        ambiguous words (a token that is both a person and a location name).
        """
        role_list = [roles] if isinstance(roles, str) else list(roles)
        if not role_list:
            raise ValueError("need at least one role")
        base = np.mean([self.prototype(role) for role in role_list], axis=0)
        return base + self._rng.normal(scale=self.noise_scale, size=self.dim)

    def build_matrix(self, word_roles: list[str | list[str] | None]) -> np.ndarray:
        """Embeddings for a whole vocabulary.

        ``word_roles[i]`` is the role (or roles) of vocabulary id ``i``;
        ``None`` yields a pure-noise vector (PAD gets zeros at id 0 by
        convention — pass roles starting from id 0 and the first row is
        zeroed).
        """
        matrix = np.zeros((len(word_roles), self.dim))
        for i, roles in enumerate(word_roles):
            if i == 0:
                continue  # PAD stays zero
            if roles is None:
                matrix[i] = self._rng.normal(scale=self.noise_scale, size=self.dim)
            else:
                matrix[i] = self.vector(roles)
        return matrix
