"""BIO tagging-scheme utilities shared by the NER data pipeline.

The CoNLL-2003 setting uses 9 classes: ``O`` plus begin/inside tags for
four entity types (PER, LOC, ORG, MISC). Spans are ``(entity_type, start,
end)`` with ``end`` exclusive. Extraction follows the strict reading used
by the paper's evaluation: a span starts at ``B-X`` and extends through
consecutive ``I-X``; an ``I-X`` without a compatible predecessor starts a
new (malformed-origin) span — the conventional CoNLL repair, which keeps
extraction total on noisy crowd annotations.
"""

from __future__ import annotations

import numpy as np

__all__ = ["CONLL_LABELS", "label_index", "spans_from_bio", "bio_from_spans"]

# The 9 CoNLL-2003 classes, "Others" first (paper §VI-A1).
CONLL_LABELS = [
    "O",
    "B-PER",
    "I-PER",
    "B-LOC",
    "I-LOC",
    "B-ORG",
    "I-ORG",
    "B-MISC",
    "I-MISC",
]


def label_index(labels: list[str]) -> dict[str, int]:
    """Name → id mapping for a label vocabulary."""
    return {name: i for i, name in enumerate(labels)}


def spans_from_bio(tags: np.ndarray, labels: list[str] = CONLL_LABELS) -> list[tuple[str, int, int]]:
    """Extract entity spans ``(type, start, end_exclusive)`` from tag ids.

    Handles malformed sequences (bare ``I-X``, ``I-X`` after a different
    entity) by starting a new span, matching common conlleval behaviour.
    """
    tags = np.asarray(tags)
    spans: list[tuple[str, int, int]] = []
    current_type: str | None = None
    start = 0
    for position, tag_id in enumerate(tags):
        name = labels[int(tag_id)]
        if name == "O":
            if current_type is not None:
                spans.append((current_type, start, position))
                current_type = None
            continue
        prefix, entity = name.split("-", 1)
        if prefix == "B" or current_type != entity:
            if current_type is not None:
                spans.append((current_type, start, position))
            current_type = entity
            start = position
    if current_type is not None:
        spans.append((current_type, start, len(tags)))
    return spans


def bio_from_spans(
    spans: list[tuple[str, int, int]],
    length: int,
    labels: list[str] = CONLL_LABELS,
) -> np.ndarray:
    """Render spans back into a BIO tag-id sequence of ``length`` tokens.

    Overlapping spans are applied in order; later spans overwrite earlier
    ones (the simulator relies on this to model sloppy boundary edits).
    """
    index = label_index(labels)
    tags = np.full(length, index["O"], dtype=np.int64)
    for entity, start, end in spans:
        if start < 0 or end > length or start >= end:
            raise ValueError(f"invalid span ({entity}, {start}, {end}) for length {length}")
        begin_id = index.get(f"B-{entity}")
        inside_id = index.get(f"I-{entity}")
        if begin_id is None or inside_id is None:
            raise KeyError(f"unknown entity type {entity!r}")
        tags[start] = begin_id
        tags[start + 1 : end] = inside_id
    return tags
