"""File I/O for the real datasets the paper evaluates on.

The offline benches run on simulated data, but a downstream user with the
actual Sentiment Polarity (MTurk) / CoNLL-2003 NER (MTurk) releases (see
the paper's footnote: https://github.com/junchenzhi/Logic-LNCL) can load
them with these readers and run every method in this library unchanged.

Formats:

* **CoNLL** — one token per line, blank line between sentences. Column 0
  is the token, the last column the gold BIO tag; :func:`read_conll`.
* **Crowd CoNLL** — like CoNLL but with one tag column per annotator and
  ``?`` marking "did not annotate this sentence";
  :func:`read_crowd_conll`.
* **Sentiment TSV** — ``text<TAB>label`` per line; :func:`read_sentiment_tsv`.
* **Crowd label CSV** — one row per instance, one integer column per
  annotator, ``-1`` for missing; :func:`read_crowd_csv`.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from ..crowd.types import MISSING, CrowdLabelMatrix, SequenceCrowdLabels
from .bio import CONLL_LABELS, label_index
from .datasets import SequenceTaggingDataset, TextClassificationDataset, pad_sequences
from .vocab import Vocabulary

__all__ = [
    "read_conll",
    "write_conll",
    "read_crowd_conll",
    "read_sentiment_tsv",
    "read_crowd_csv",
    "write_crowd_csv",
]


def _sentence_blocks(text: str) -> list[list[list[str]]]:
    """Split file text into sentences of whitespace-separated columns."""
    sentences: list[list[list[str]]] = []
    current: list[list[str]] = []
    for raw_line in text.splitlines():
        line = raw_line.strip()
        if not line:
            if current:
                sentences.append(current)
                current = []
            continue
        current.append(line.split())
    if current:
        sentences.append(current)
    return sentences


def read_conll(
    path: str | Path,
    vocab: Vocabulary | None = None,
    label_names: list[str] = CONLL_LABELS,
    grow_vocab: bool = True,
) -> SequenceTaggingDataset:
    """Read a gold-tagged CoNLL file into a :class:`SequenceTaggingDataset`.

    Parameters
    ----------
    vocab:
        Existing vocabulary to encode against (e.g. the training split's);
        a fresh one is created when omitted.
    grow_vocab:
        Add unseen tokens to the vocabulary (True for the training split,
        False for dev/test so they map to UNK).
    """
    text = Path(path).read_text()
    vocab = vocab if vocab is not None else Vocabulary()
    index = label_index(label_names)
    token_seqs: list[np.ndarray] = []
    tag_seqs: list[np.ndarray] = []
    for sentence_number, sentence in enumerate(_sentence_blocks(text)):
        tokens = []
        tags = []
        for columns in sentence:
            if len(columns) < 2:
                raise ValueError(
                    f"sentence {sentence_number}: line {columns!r} needs token and tag"
                )
            word, tag = columns[0], columns[-1]
            if tag not in index:
                raise ValueError(f"unknown tag {tag!r} in sentence {sentence_number}")
            tokens.append(vocab.add(word) if grow_vocab else vocab.id_of(word))
            tags.append(index[tag])
        token_seqs.append(np.array(tokens, dtype=np.int64))
        tag_seqs.append(np.array(tags, dtype=np.int64))
    if not token_seqs:
        raise ValueError(f"no sentences found in {path}")
    tokens_padded, lengths = pad_sequences(token_seqs, pad_id=vocab.pad_id)
    return SequenceTaggingDataset(
        tokens=tokens_padded,
        lengths=lengths,
        tags=tag_seqs,
        vocab=vocab,
        label_names=list(label_names),
    )


def write_conll(dataset: SequenceTaggingDataset, path: str | Path) -> None:
    """Write a dataset back to CoNLL format (token TAB tag)."""
    lines: list[str] = []
    for i in range(len(dataset)):
        length = int(dataset.lengths[i])
        for position in range(length):
            word = dataset.vocab.token_of(int(dataset.tokens[i, position]))
            tag = dataset.label_names[int(dataset.tags[i][position])]
            lines.append(f"{word}\t{tag}")
        lines.append("")
    Path(path).write_text("\n".join(lines) + "\n")


def read_crowd_conll(
    path: str | Path,
    label_names: list[str] = CONLL_LABELS,
    missing_marker: str = "?",
) -> SequenceCrowdLabels:
    """Read per-annotator tag columns into :class:`SequenceCrowdLabels`.

    Each non-blank line: ``token tag_1 ... tag_J``; ``?`` marks an
    annotator who skipped the sentence (must then be ``?`` on every token
    of that sentence).
    """
    text = Path(path).read_text()
    index = label_index(label_names)
    sentences = _sentence_blocks(text)
    if not sentences:
        raise ValueError(f"no sentences found in {path}")
    num_annotators = len(sentences[0][0]) - 1
    if num_annotators < 1:
        raise ValueError("crowd CoNLL needs at least one annotator column")
    matrices: list[np.ndarray] = []
    for sentence_number, sentence in enumerate(sentences):
        matrix = np.full((len(sentence), num_annotators), MISSING, dtype=np.int64)
        for row, columns in enumerate(sentence):
            if len(columns) - 1 != num_annotators:
                raise ValueError(
                    f"sentence {sentence_number}: expected {num_annotators} annotator "
                    f"columns, got {len(columns) - 1}"
                )
            for j, tag in enumerate(columns[1:]):
                if tag == missing_marker:
                    continue
                if tag not in index:
                    raise ValueError(
                        f"unknown tag {tag!r} in sentence {sentence_number}"
                    )
                matrix[row, j] = index[tag]
        matrices.append(matrix)
    return SequenceCrowdLabels(matrices, num_classes=len(label_names), num_annotators=num_annotators)


def read_sentiment_tsv(
    path: str | Path,
    vocab: Vocabulary | None = None,
    num_classes: int = 2,
    grow_vocab: bool = True,
) -> TextClassificationDataset:
    """Read ``text<TAB>label`` lines into a :class:`TextClassificationDataset`."""
    vocab = vocab if vocab is not None else Vocabulary()
    token_seqs: list[np.ndarray] = []
    labels: list[int] = []
    for line_number, raw_line in enumerate(Path(path).read_text().splitlines()):
        line = raw_line.strip()
        if not line:
            continue
        if "\t" not in line:
            raise ValueError(f"line {line_number}: expected 'text<TAB>label'")
        text, label_text = line.rsplit("\t", 1)
        label = int(label_text)
        if not 0 <= label < num_classes:
            raise ValueError(f"line {line_number}: label {label} out of range")
        words = text.split()
        if not words:
            raise ValueError(f"line {line_number}: empty text")
        ids = [vocab.add(w) if grow_vocab else vocab.id_of(w) for w in words]
        token_seqs.append(np.array(ids, dtype=np.int64))
        labels.append(label)
    if not token_seqs:
        raise ValueError(f"no instances found in {path}")
    tokens_padded, lengths = pad_sequences(token_seqs, pad_id=vocab.pad_id)
    return TextClassificationDataset(
        tokens=tokens_padded,
        lengths=lengths,
        labels=np.array(labels, dtype=np.int64),
        vocab=vocab,
        num_classes=num_classes,
    )


def read_crowd_csv(path: str | Path, num_classes: int, delimiter: str = ",") -> CrowdLabelMatrix:
    """Read an instance × annotator integer matrix (``-1`` = missing)."""
    rows: list[list[int]] = []
    for line_number, raw_line in enumerate(Path(path).read_text().splitlines()):
        line = raw_line.strip()
        if not line:
            continue
        try:
            rows.append([int(cell) for cell in line.split(delimiter)])
        except ValueError as exc:
            raise ValueError(f"line {line_number}: non-integer cell") from exc
    if not rows:
        raise ValueError(f"no rows found in {path}")
    widths = {len(row) for row in rows}
    if len(widths) != 1:
        raise ValueError(f"ragged rows: widths {sorted(widths)}")
    return CrowdLabelMatrix(np.array(rows, dtype=np.int64), num_classes)


def write_crowd_csv(crowd: CrowdLabelMatrix, path: str | Path, delimiter: str = ",") -> None:
    """Write a crowd matrix in the :func:`read_crowd_csv` format."""
    lines = [delimiter.join(str(int(v)) for v in row) for row in crowd.labels]
    Path(path).write_text("\n".join(lines) + "\n")
