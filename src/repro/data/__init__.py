"""Data substrate: vocabularies, synthetic corpora, embeddings, batching."""

from .bio import CONLL_LABELS, bio_from_spans, label_index, spans_from_bio
from .datasets import SequenceTaggingDataset, TextClassificationDataset, pad_sequences
from .embeddings import PrototypeEmbeddings
from .io import (
    read_conll,
    read_crowd_conll,
    read_crowd_csv,
    read_sentiment_tsv,
    write_conll,
    write_crowd_csv,
)
from .loaders import batch_indices
from .ner import ENTITY_TYPES, NERCorpusConfig, NERTask, make_ner_task
from .sentiment import SentimentCorpusConfig, SentimentTask, make_sentiment_task
from .vocab import PAD_TOKEN, UNK_TOKEN, Vocabulary

__all__ = [
    "Vocabulary",
    "PAD_TOKEN",
    "UNK_TOKEN",
    "CONLL_LABELS",
    "label_index",
    "spans_from_bio",
    "bio_from_spans",
    "TextClassificationDataset",
    "SequenceTaggingDataset",
    "pad_sequences",
    "PrototypeEmbeddings",
    "batch_indices",
    "SentimentCorpusConfig",
    "SentimentTask",
    "make_sentiment_task",
    "NERCorpusConfig",
    "NERTask",
    "make_ner_task",
    "ENTITY_TYPES",
    "read_conll",
    "write_conll",
    "read_crowd_conll",
    "read_sentiment_tsv",
    "read_crowd_csv",
    "write_crowd_csv",
]
