"""Mini-batch iteration helpers."""

from __future__ import annotations

from typing import Iterator

import numpy as np

__all__ = ["batch_indices"]


def batch_indices(
    n: int,
    batch_size: int,
    rng: np.random.Generator | None = None,
    shuffle: bool = True,
    drop_last: bool = False,
) -> Iterator[np.ndarray]:
    """Yield index arrays covering ``range(n)`` in mini-batches.

    Parameters
    ----------
    n:
        Dataset size.
    batch_size:
        Paper Table I: 50 (sentiment) / 64 (NER).
    rng:
        Required when ``shuffle`` is true, so epoch order is reproducible.
    drop_last:
        Skip a trailing partial batch.

    ``n = 0`` yields no batches: an empty dataset is a no-op epoch, not an
    error — the epoch runners report loss 0.0 with zero steps, matching
    the empty-dataset tolerance of the prediction sweeps and the inference
    methods. Negative sizes are still rejected.
    """
    if n < 0:
        raise ValueError(f"dataset size must be non-negative, got {n}")
    if batch_size <= 0:
        raise ValueError(f"batch size must be positive, got {batch_size}")
    if shuffle:
        if rng is None:
            raise ValueError("shuffling requires an rng")
        order = rng.permutation(n)
    else:
        order = np.arange(n)
    for start in range(0, n, batch_size):
        batch = order[start : start + batch_size]
        if drop_last and len(batch) < batch_size:
            return
        yield batch
