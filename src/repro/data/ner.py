"""Synthetic CoNLL-style NER corpus (substitution S2, sequence version).

Reproduces the structural properties the paper's NER evaluation relies on:

* 9 BIO classes over four entity types (PER, LOC, ORG, MISC);
* multi-token entities (1–3 tokens), so the Eq. 18–19 transition rules
  have real work to do (I-X tags are frequent);
* type-specific name lexicons with a controllable fraction of *ambiguous*
  tokens shared between types (a "washington" can be a person or a
  location), which keeps the Gold tagger comfortably below 100% F1;
* filler words between entities.

Sentences are built from a simple slot grammar: alternating filler runs and
entity mentions, 1–3 entities per sentence.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .bio import CONLL_LABELS, label_index
from .datasets import SequenceTaggingDataset, pad_sequences
from .embeddings import PrototypeEmbeddings
from .vocab import Vocabulary

__all__ = ["NERCorpusConfig", "NERTask", "make_ner_task", "ENTITY_TYPES"]

ENTITY_TYPES = ["PER", "LOC", "ORG", "MISC"]


@dataclass
class NERCorpusConfig:
    """Knobs of the synthetic NER corpus."""

    num_train: int = 800
    num_dev: int = 250
    num_test: int = 250
    tokens_per_type: int = 40
    num_filler_words: int = 120
    ambiguous_fraction: float = 0.15
    min_entities: int = 1
    max_entities: int = 3
    min_filler_run: int = 1
    max_filler_run: int = 4
    max_entity_tokens: int = 3
    # Mention-length distribution p(1), p(2), p(3), ... — skewed short like
    # CoNLL-2003 (most mentions are 1-2 tokens). With (0.55, 0.35, 0.10)
    # the empirical ratio of B-X→I-X to I-X→I-X transitions is ≈0.8:0.2,
    # i.e. exactly the weights the paper assigns to the Eq. 18/19 rules
    # ("set through ... lightweight sample statistics").
    entity_length_weights: tuple[float, ...] = (0.55, 0.35, 0.10)
    embedding_dim: int = 50
    embedding_noise: float = 0.5

    def __post_init__(self) -> None:
        if not 0.0 <= self.ambiguous_fraction <= 1.0:
            raise ValueError("ambiguous_fraction must be in [0, 1]")
        if self.min_entities < 1 or self.max_entities < self.min_entities:
            raise ValueError("invalid entity count range")
        if self.max_entity_tokens < 1:
            raise ValueError("entities need at least one token")
        if self.min_filler_run < 1 or self.max_filler_run < self.min_filler_run:
            raise ValueError("invalid filler run range")
        if len(self.entity_length_weights) != self.max_entity_tokens:
            raise ValueError(
                "entity_length_weights must have max_entity_tokens entries"
            )
        if any(w < 0 for w in self.entity_length_weights) or sum(self.entity_length_weights) <= 0:
            raise ValueError("entity_length_weights must be non-negative and sum > 0")


@dataclass
class NERTask:
    """Everything the NER experiments need."""

    train: SequenceTaggingDataset
    dev: SequenceTaggingDataset
    test: SequenceTaggingDataset
    embeddings: np.ndarray
    vocab: Vocabulary
    label_names: list[str]
    config: NERCorpusConfig = field(repr=False, default=None)


class _Gazetteer:
    """Per-type token pools with a shared ambiguous sub-pool."""

    def __init__(self, vocab: Vocabulary, config: NERCorpusConfig, rng: np.random.Generator) -> None:
        self.pools: dict[str, list[int]] = {}
        self.roles: dict[int, list[str]] = {}
        ambiguous_count = int(config.tokens_per_type * config.ambiguous_fraction)
        for entity_type in ENTITY_TYPES:
            own = [
                vocab.add(f"{entity_type.lower()}tok{i}")
                for i in range(config.tokens_per_type - ambiguous_count)
            ]
            for token_id in own:
                self.roles[token_id] = [entity_type.lower()]
            self.pools[entity_type] = own
        # Ambiguous tokens: each belongs to two types' pools.
        for pair_index in range(ambiguous_count * len(ENTITY_TYPES) // 2):
            first, second = rng.choice(len(ENTITY_TYPES), size=2, replace=False)
            type_a, type_b = ENTITY_TYPES[first], ENTITY_TYPES[second]
            token_id = vocab.add(f"amb{pair_index}")
            self.roles[token_id] = [type_a.lower(), type_b.lower()]
            self.pools[type_a].append(token_id)
            self.pools[type_b].append(token_id)
        self.fillers = [vocab.add(f"w{i}") for i in range(config.num_filler_words)]
        for token_id in self.fillers:
            self.roles[token_id] = ["filler"]

    def entity_mention(
        self,
        rng: np.random.Generator,
        entity_type: str,
        length_weights: tuple[float, ...],
    ) -> list[int]:
        weights = np.asarray(length_weights, dtype=np.float64)
        length = int(rng.choice(len(weights), p=weights / weights.sum())) + 1
        pool = self.pools[entity_type]
        return [pool[rng.integers(len(pool))] for _ in range(length)]

    def filler_run(self, rng: np.random.Generator, low: int, high: int) -> list[int]:
        length = int(rng.integers(low, high + 1))
        return [self.fillers[rng.integers(len(self.fillers))] for _ in range(length)]


def _generate_sentence(
    rng: np.random.Generator, gazetteer: _Gazetteer, config: NERCorpusConfig, index: dict[str, int]
) -> tuple[np.ndarray, np.ndarray]:
    tokens: list[int] = []
    tags: list[int] = []
    num_entities = int(rng.integers(config.min_entities, config.max_entities + 1))
    tokens.extend(gazetteer.filler_run(rng, config.min_filler_run, config.max_filler_run))
    tags.extend([index["O"]] * len(tokens))
    for _ in range(num_entities):
        entity_type = ENTITY_TYPES[rng.integers(len(ENTITY_TYPES))]
        mention = gazetteer.entity_mention(rng, entity_type, config.entity_length_weights)
        tokens.extend(mention)
        tags.append(index[f"B-{entity_type}"])
        tags.extend([index[f"I-{entity_type}"]] * (len(mention) - 1))
        filler = gazetteer.filler_run(rng, config.min_filler_run, config.max_filler_run)
        tokens.extend(filler)
        tags.extend([index["O"]] * len(filler))
    return np.array(tokens, dtype=np.int64), np.array(tags, dtype=np.int64)


def _generate_split(rng, gazetteer, config, n, vocab) -> SequenceTaggingDataset:
    index = label_index(CONLL_LABELS)
    token_seqs: list[np.ndarray] = []
    tag_seqs: list[np.ndarray] = []
    for _ in range(n):
        tokens, tags = _generate_sentence(rng, gazetteer, config, index)
        token_seqs.append(tokens)
        tag_seqs.append(tags)
    tokens_padded, lengths = pad_sequences(token_seqs, pad_id=vocab.pad_id)
    return SequenceTaggingDataset(
        tokens=tokens_padded,
        lengths=lengths,
        tags=tag_seqs,
        vocab=vocab,
        label_names=list(CONLL_LABELS),
    )


def make_ner_task(rng: np.random.Generator, config: NERCorpusConfig | None = None) -> NERTask:
    """Generate the corpus, splits, and prototype embeddings.

    Crowd labels are attached separately via
    :func:`repro.crowd.simulate_ner_crowd`.
    """
    config = config or NERCorpusConfig()
    vocab = Vocabulary()
    gazetteer = _Gazetteer(vocab, config, rng)

    train = _generate_split(rng, gazetteer, config, config.num_train, vocab)
    dev = _generate_split(rng, gazetteer, config, config.num_dev, vocab)
    test = _generate_split(rng, gazetteer, config, config.num_test, vocab)

    factory = PrototypeEmbeddings(config.embedding_dim, config.embedding_noise, rng)
    roles: list[str | list[str] | None] = [None] * len(vocab)
    for token_id, role_list in gazetteer.roles.items():
        roles[token_id] = role_list
    embeddings = factory.build_matrix(roles)

    return NERTask(
        train=train,
        dev=dev,
        test=test,
        embeddings=embeddings,
        vocab=vocab,
        label_names=list(CONLL_LABELS),
        config=config,
    )
