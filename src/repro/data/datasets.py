"""Dataset containers tying together tokens, ground truth, and crowd labels."""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from ..crowd.types import CrowdLabelMatrix, SequenceCrowdLabels
from .vocab import Vocabulary

__all__ = ["TextClassificationDataset", "SequenceTaggingDataset", "pad_sequences"]


def pad_sequences(sequences: list[np.ndarray], pad_id: int = 0) -> tuple[np.ndarray, np.ndarray]:
    """Pad ragged integer sequences into ``(tokens, lengths)`` arrays."""
    if not sequences:
        raise ValueError("cannot pad an empty list of sequences")
    lengths = np.array([len(seq) for seq in sequences], dtype=np.int64)
    if lengths.min() == 0:
        raise ValueError("sequences must be non-empty")
    out = np.full((len(sequences), int(lengths.max())), pad_id, dtype=np.int64)
    for i, seq in enumerate(sequences):
        out[i, : len(seq)] = seq
    return out, lengths


@dataclass
class TextClassificationDataset:
    """Sentence-level classification data (the sentiment task).

    Attributes
    ----------
    tokens:
        ``(I, T_max)`` padded token ids.
    lengths:
        ``(I,)`` true sentence lengths.
    labels:
        ``(I,)`` ground-truth classes (used for Gold training and for
        evaluation only — LNCL methods never see them).
    vocab:
        The shared vocabulary.
    crowd:
        Crowd labels, or None for clean splits (dev/test).
    num_classes:
        ``K``.
    """

    tokens: np.ndarray
    lengths: np.ndarray
    labels: np.ndarray
    vocab: Vocabulary
    num_classes: int
    crowd: CrowdLabelMatrix | None = None

    def __post_init__(self) -> None:
        I = self.tokens.shape[0]
        if self.lengths.shape != (I,) or self.labels.shape != (I,):
            raise ValueError("tokens/lengths/labels row counts disagree")
        if self.crowd is not None and self.crowd.num_instances != I:
            raise ValueError("crowd labels row count disagrees with tokens")

    def __len__(self) -> int:
        return self.tokens.shape[0]

    @property
    def mask(self) -> np.ndarray:
        """Boolean ``(I, T_max)`` validity mask derived from lengths."""
        return np.arange(self.tokens.shape[1])[None, :] < self.lengths[:, None]

    def subset(self, indices: np.ndarray) -> "TextClassificationDataset":
        """Select a subset of instances (used by the sample-efficiency bench)."""
        indices = np.asarray(indices)
        return replace(
            self,
            tokens=self.tokens[indices],
            lengths=self.lengths[indices],
            labels=self.labels[indices],
            crowd=self.crowd.subset(indices) if self.crowd is not None else None,
        )


@dataclass
class SequenceTaggingDataset:
    """Token-level tagging data (the NER task).

    Attributes
    ----------
    tokens:
        ``(I, T_max)`` padded token ids.
    lengths:
        ``(I,)`` sentence lengths.
    tags:
        List of ``(T_i,)`` gold tag-id arrays (ragged).
    label_names:
        Tag vocabulary (e.g. the 9 CoNLL classes).
    crowd:
        Token-level crowd labels, or None for clean splits.
    """

    tokens: np.ndarray
    lengths: np.ndarray
    tags: list[np.ndarray]
    vocab: Vocabulary
    label_names: list[str]
    crowd: SequenceCrowdLabels | None = None

    def __post_init__(self) -> None:
        I = self.tokens.shape[0]
        if self.lengths.shape != (I,) or len(self.tags) != I:
            raise ValueError("tokens/lengths/tags row counts disagree")
        for i, (tag_seq, length) in enumerate(zip(self.tags, self.lengths)):
            if len(tag_seq) != length:
                raise ValueError(f"instance {i}: {len(tag_seq)} tags for length {length}")
        if self.crowd is not None and self.crowd.num_instances != I:
            raise ValueError("crowd labels row count disagrees with tokens")

    def __len__(self) -> int:
        return self.tokens.shape[0]

    @property
    def num_classes(self) -> int:
        return len(self.label_names)

    @property
    def mask(self) -> np.ndarray:
        """Boolean ``(I, T_max)`` validity mask derived from lengths."""
        return np.arange(self.tokens.shape[1])[None, :] < self.lengths[:, None]

    def padded_tags(self, pad_value: int = 0) -> np.ndarray:
        """Gold tags as a padded ``(I, T_max)`` array (mask out the padding)."""
        out = np.full((len(self), self.tokens.shape[1]), pad_value, dtype=np.int64)
        for i, tag_seq in enumerate(self.tags):
            out[i, : len(tag_seq)] = tag_seq
        return out

    def subset(self, indices: np.ndarray) -> "SequenceTaggingDataset":
        """Select a subset of sentences."""
        indices = np.asarray(indices)
        return replace(
            self,
            tokens=self.tokens[indices],
            lengths=self.lengths[indices],
            tags=[self.tags[int(i)] for i in indices],
            crowd=self.crowd.subset(indices) if self.crowd is not None else None,
        )
