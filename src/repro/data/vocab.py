"""Vocabulary: token ↔ id mapping with PAD/UNK specials."""

from __future__ import annotations

from typing import Iterable

import numpy as np

__all__ = ["Vocabulary", "PAD_TOKEN", "UNK_TOKEN"]

PAD_TOKEN = "<pad>"
UNK_TOKEN = "<unk>"


class Vocabulary:
    """Bidirectional token/id mapping.

    Ids 0 and 1 are reserved for padding and unknown tokens; all lookups of
    unseen tokens resolve to UNK.
    """

    def __init__(self, tokens: Iterable[str] = ()) -> None:
        self._token_to_id: dict[str, int] = {PAD_TOKEN: 0, UNK_TOKEN: 1}
        self._id_to_token: list[str] = [PAD_TOKEN, UNK_TOKEN]
        for token in tokens:
            self.add(token)

    @property
    def pad_id(self) -> int:
        return 0

    @property
    def unk_id(self) -> int:
        return 1

    def __len__(self) -> int:
        return len(self._id_to_token)

    def __contains__(self, token: str) -> bool:
        return token in self._token_to_id

    def add(self, token: str) -> int:
        """Register a token (idempotent); returns its id."""
        if not token:
            raise ValueError("cannot add an empty token")
        existing = self._token_to_id.get(token)
        if existing is not None:
            return existing
        token_id = len(self._id_to_token)
        self._token_to_id[token] = token_id
        self._id_to_token.append(token)
        return token_id

    def id_of(self, token: str) -> int:
        """Id of ``token``; UNK for unseen tokens."""
        return self._token_to_id.get(token, self.unk_id)

    def token_of(self, token_id: int) -> str:
        if not 0 <= token_id < len(self._id_to_token):
            raise IndexError(f"token id {token_id} out of range")
        return self._id_to_token[token_id]

    def encode(self, tokens: Iterable[str]) -> np.ndarray:
        """Encode a token sequence to an id array."""
        return np.array([self.id_of(token) for token in tokens], dtype=np.int64)

    def decode(self, ids: Iterable[int]) -> list[str]:
        """Decode an id sequence back to tokens."""
        return [self.token_of(int(i)) for i in ids]
