"""Synthetic sentence-level sentiment corpus (substitution S2).

The real Sentiment Polarity (MTurk) corpus is movie-review sentences with
binary polarity; what the paper's evaluation exercises is (a) sentences
whose words carry noisy polarity signal and (b) a sub-population of
contrastive "A-but-B" sentences where the clause after "but" dominates the
sentence's sentiment — the structure the Eq. 16–17 logic rule encodes.

This generator reproduces those properties with a controllable vocabulary:

* a polarity lexicon (positive/negative words) with imperfect purity — a
  "positive" sentence still contains some negative words;
* neutral filler words;
* contrastive sentences: clause A leans opposite to the sentence label,
  then ``but``, then clause B leaning with the label (with probability
  ``but_dominance`` — 1.0 would make the rule infallible);
* weaker "however" contrastive sentences (lower dominance), used by the
  paper's "our-other-rules" ablation;
* a fraction of genuinely ambiguous sentences with mixed polarity and a
  random label, which caps achievable accuracy below 100% the way real
  review data does.

Ground-truth labels: 0 = negative, 1 = positive (balanced).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .datasets import TextClassificationDataset, pad_sequences
from .embeddings import PrototypeEmbeddings
from .vocab import Vocabulary

__all__ = ["SentimentCorpusConfig", "SentimentTask", "make_sentiment_task"]

NEGATIVE, POSITIVE = 0, 1


@dataclass
class SentimentCorpusConfig:
    """Knobs of the synthetic sentiment corpus.

    Defaults are calibrated so a competently trained Gold classifier lands
    in a realistic accuracy band (paper Gold: 79.26%) rather than at 100%.
    """

    num_train: int = 1200
    num_dev: int = 400
    num_test: int = 400
    num_positive_words: int = 60
    num_negative_words: int = 60
    num_neutral_words: int = 150
    min_length: int = 6
    max_length: int = 18
    polarity_density: float = 0.35
    clause_polarity_density: float = 0.45
    lexicon_purity: float = 0.90
    but_fraction: float = 0.18
    however_fraction: float = 0.07
    but_dominance: float = 0.95
    however_dominance: float = 0.72
    hard_fraction: float = 0.20
    embedding_dim: int = 50
    embedding_noise: float = 0.4

    def __post_init__(self) -> None:
        fractions = self.but_fraction + self.however_fraction + self.hard_fraction
        if fractions > 1.0:
            raise ValueError("sentence-type fractions exceed 1")
        for name in ("polarity_density", "clause_polarity_density", "lexicon_purity",
                     "but_dominance", "however_dominance"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {value}")
        if self.min_length < 4 or self.max_length < self.min_length:
            raise ValueError("invalid sentence length range")


@dataclass
class SentimentTask:
    """Everything the sentiment experiments need."""

    train: TextClassificationDataset
    dev: TextClassificationDataset
    test: TextClassificationDataset
    embeddings: np.ndarray
    vocab: Vocabulary
    but_id: int
    however_id: int
    config: SentimentCorpusConfig = field(repr=False, default=None)


class _Lexicon:
    def __init__(self, vocab: Vocabulary, config: SentimentCorpusConfig) -> None:
        self.positive = [vocab.add(f"pos{i}") for i in range(config.num_positive_words)]
        self.negative = [vocab.add(f"neg{i}") for i in range(config.num_negative_words)]
        self.neutral = [vocab.add(f"neu{i}") for i in range(config.num_neutral_words)]
        self.but = vocab.add("but")
        self.however = vocab.add("however")

    def polarity_word(self, rng: np.random.Generator, label: int, purity: float) -> int:
        """A polarity word for ``label``, impure with probability 1-purity."""
        effective = label if rng.random() < purity else 1 - label
        pool = self.positive if effective == POSITIVE else self.negative
        return pool[rng.integers(len(pool))]

    def neutral_word(self, rng: np.random.Generator) -> int:
        return self.neutral[rng.integers(len(self.neutral))]


def _plain_sentence(rng, lexicon, config, label, density=None) -> list[int]:
    density = config.polarity_density if density is None else density
    length = int(rng.integers(config.min_length, config.max_length + 1))
    return [
        lexicon.polarity_word(rng, label, config.lexicon_purity)
        if rng.random() < density
        else lexicon.neutral_word(rng)
        for _ in range(length)
    ]


def _clause(rng, lexicon, config, label, length) -> list[int]:
    return [
        lexicon.polarity_word(rng, label, config.lexicon_purity)
        if rng.random() < config.clause_polarity_density
        else lexicon.neutral_word(rng)
        for _ in range(length)
    ]


def _contrastive_sentence(rng, lexicon, config, label, trigger, dominance) -> tuple[list[int], int]:
    """Build "A <trigger> B"; returns (tokens, final_label).

    Clause B carries label ``b_label``; the sentence label equals it with
    probability ``dominance`` (otherwise clause A wins).
    """
    length = int(rng.integers(config.min_length, config.max_length + 1))
    len_a = max(2, length // 2 - 1)
    len_b = max(2, length - len_a - 1)
    b_label = label
    a_label = 1 - b_label
    tokens = (
        _clause(rng, lexicon, config, a_label, len_a)
        + [trigger]
        + _clause(rng, lexicon, config, b_label, len_b)
    )
    final = b_label if rng.random() < dominance else a_label
    return tokens, final


def _hard_sentence(rng, lexicon, config) -> tuple[list[int], int]:
    """Mixed-polarity sentence whose label is genuinely random."""
    length = int(rng.integers(config.min_length, config.max_length + 1))
    tokens = [
        lexicon.polarity_word(rng, int(rng.integers(2)), 1.0)
        if rng.random() < config.polarity_density
        else lexicon.neutral_word(rng)
        for _ in range(length)
    ]
    return tokens, int(rng.integers(2))


def _generate_split(rng, lexicon, config, n, vocab) -> TextClassificationDataset:
    sequences: list[np.ndarray] = []
    labels = np.zeros(n, dtype=np.int64)
    kinds = rng.random(n)
    but_cut = config.but_fraction
    however_cut = but_cut + config.however_fraction
    hard_cut = however_cut + config.hard_fraction
    for i in range(n):
        intended = int(rng.integers(2))  # balanced classes
        if kinds[i] < but_cut:
            tokens, label = _contrastive_sentence(
                rng, lexicon, config, intended, lexicon.but, config.but_dominance
            )
        elif kinds[i] < however_cut:
            tokens, label = _contrastive_sentence(
                rng, lexicon, config, intended, lexicon.however, config.however_dominance
            )
        elif kinds[i] < hard_cut:
            tokens, label = _hard_sentence(rng, lexicon, config)
        else:
            tokens, label = _plain_sentence(rng, lexicon, config, intended), intended
        sequences.append(np.array(tokens, dtype=np.int64))
        labels[i] = label
    tokens_padded, lengths = pad_sequences(sequences, pad_id=vocab.pad_id)
    return TextClassificationDataset(
        tokens=tokens_padded,
        lengths=lengths,
        labels=labels,
        vocab=vocab,
        num_classes=2,
    )


def make_sentiment_task(
    rng: np.random.Generator, config: SentimentCorpusConfig | None = None
) -> SentimentTask:
    """Generate the corpus, splits, and prototype embeddings.

    Crowd labels are *not* attached here — compose with
    :func:`repro.crowd.simulate_classification_crowd` so experiments can
    vary the crowd independently of the corpus.
    """
    config = config or SentimentCorpusConfig()
    vocab = Vocabulary()
    lexicon = _Lexicon(vocab, config)

    train = _generate_split(rng, lexicon, config, config.num_train, vocab)
    dev = _generate_split(rng, lexicon, config, config.num_dev, vocab)
    test = _generate_split(rng, lexicon, config, config.num_test, vocab)

    factory = PrototypeEmbeddings(config.embedding_dim, config.embedding_noise, rng)
    factory.opposed_prototypes("positive", "negative")
    roles: list[str | list[str] | None] = [None] * len(vocab)
    for token_id in lexicon.positive:
        roles[token_id] = "positive"
    for token_id in lexicon.negative:
        roles[token_id] = "negative"
    for token_id in lexicon.neutral:
        roles[token_id] = "neutral"
    roles[lexicon.but] = "contrast"
    roles[lexicon.however] = "contrast"
    embeddings = factory.build_matrix(roles)

    return SentimentTask(
        train=train,
        dev=dev,
        test=test,
        embeddings=embeddings,
        vocab=vocab,
        but_id=lexicon.but,
        however_id=lexicon.however,
        config=config,
    )
