"""Evaluation metrics: accuracy, strict span F1, statistics, reliability."""

from .classification import accuracy, per_class_accuracy, posterior_accuracy
from .ner_f1 import PRF1, span_f1_score, token_accuracy
from .reliability import (
    ReliabilityComparison,
    compare_reliability,
    confusion_mae,
    overall_reliability,
)
from .statistics import TTestResult, one_sided_t_test, pearson_correlation

__all__ = [
    "accuracy",
    "posterior_accuracy",
    "per_class_accuracy",
    "PRF1",
    "span_f1_score",
    "token_accuracy",
    "TTestResult",
    "one_sided_t_test",
    "pearson_correlation",
    "overall_reliability",
    "confusion_mae",
    "ReliabilityComparison",
    "compare_reliability",
]
