"""Statistical tests used in the paper's analysis (§VI-B).

The paper reports one-sided t-tests of Logic-LNCL vs the strongest
competitor over repeated seeded runs, and Pearson correlations between
estimated and real annotator reliability (Fig. 6b/7b).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import stats

__all__ = ["TTestResult", "one_sided_t_test", "pearson_correlation"]


@dataclass
class TTestResult:
    """t statistic and one-sided p-value for H1: mean(a) > mean(b)."""

    t_value: float
    p_value: float

    @property
    def significant_at_1pct(self) -> bool:
        return self.p_value < 0.01


def one_sided_t_test(a: np.ndarray, b: np.ndarray, paired: bool = True) -> TTestResult:
    """One-sided test that ``a``'s mean exceeds ``b``'s.

    Paired by default (same seeds produce matched runs, the paper's
    "unilateral statistics"); falls back to Welch's test otherwise.
    """
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    if a.size < 2 or b.size < 2:
        raise ValueError("need at least two runs per method")
    if paired:
        if a.shape != b.shape:
            raise ValueError(f"paired test needs equal shapes, got {a.shape} vs {b.shape}")
        result = stats.ttest_rel(a, b, alternative="greater")
    else:
        result = stats.ttest_ind(a, b, equal_var=False, alternative="greater")
    return TTestResult(t_value=float(result.statistic), p_value=float(result.pvalue))


def pearson_correlation(x: np.ndarray, y: np.ndarray) -> float:
    """Pearson correlation coefficient (Fig. 6b/7b report ≈0.92/0.91)."""
    x = np.asarray(x, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)
    if x.shape != y.shape:
        raise ValueError(f"shape mismatch: {x.shape} vs {y.shape}")
    if x.size < 2:
        raise ValueError("need at least two points")
    return float(stats.pearsonr(x, y).statistic)
