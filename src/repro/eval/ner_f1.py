"""Strict span-level NER evaluation (precision / recall / F1).

The paper follows prior work in using the *strict* criterion: a predicted
entity counts as correct only when its type, start, and end all match a
gold entity exactly (§VI-A4). Scores are micro-averaged over the corpus.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..data.bio import CONLL_LABELS, spans_from_bio

__all__ = ["PRF1", "span_f1_score", "token_accuracy"]


@dataclass
class PRF1:
    """Micro-averaged precision/recall/F1 with raw counts."""

    precision: float
    recall: float
    f1: float
    true_positives: int
    false_positives: int
    false_negatives: int

    @staticmethod
    def from_counts(tp: int, fp: int, fn: int) -> "PRF1":
        precision = tp / (tp + fp) if tp + fp else 0.0
        recall = tp / (tp + fn) if tp + fn else 0.0
        f1 = 2 * precision * recall / (precision + recall) if precision + recall else 0.0
        return PRF1(precision, recall, f1, tp, fp, fn)


def span_f1_score(
    truth: Sequence[np.ndarray],
    predictions: Sequence[np.ndarray],
    labels: list[str] = CONLL_LABELS,
) -> PRF1:
    """Strict span-level F1 between gold and predicted tag sequences.

    Parameters
    ----------
    truth, predictions:
        Parallel lists of per-sentence tag-id arrays (equal lengths).
    """
    if len(truth) != len(predictions):
        raise ValueError(f"{len(truth)} gold vs {len(predictions)} predicted sentences")
    tp = fp = fn = 0
    for gold_tags, pred_tags in zip(truth, predictions):
        gold_tags = np.asarray(gold_tags)
        pred_tags = np.asarray(pred_tags)
        if gold_tags.shape != pred_tags.shape:
            raise ValueError(
                f"sentence length mismatch: {gold_tags.shape} vs {pred_tags.shape}"
            )
        gold_spans = Counter(spans_from_bio(gold_tags, labels))
        pred_spans = Counter(spans_from_bio(pred_tags, labels))
        overlap = gold_spans & pred_spans
        matched = sum(overlap.values())
        tp += matched
        fp += sum(pred_spans.values()) - matched
        fn += sum(gold_spans.values()) - matched
    return PRF1.from_counts(tp, fp, fn)


def token_accuracy(truth: Sequence[np.ndarray], predictions: Sequence[np.ndarray]) -> float:
    """Plain per-token accuracy (diagnostic; the paper reports span F1)."""
    correct = total = 0
    for gold_tags, pred_tags in zip(truth, predictions):
        gold_tags = np.asarray(gold_tags)
        pred_tags = np.asarray(pred_tags)
        if gold_tags.shape != pred_tags.shape:
            raise ValueError("sentence length mismatch")
        correct += int((gold_tags == pred_tags).sum())
        total += gold_tags.size
    return correct / total if total else 0.0
