"""Classification metrics: accuracy of hard labels and of soft posteriors."""

from __future__ import annotations

import numpy as np

__all__ = ["accuracy", "posterior_accuracy", "per_class_accuracy"]


def accuracy(truth: np.ndarray, predictions: np.ndarray) -> float:
    """Fraction of exact label matches."""
    truth = np.asarray(truth)
    predictions = np.asarray(predictions)
    if truth.shape != predictions.shape:
        raise ValueError(f"shape mismatch: {truth.shape} vs {predictions.shape}")
    if truth.size == 0:
        raise ValueError("cannot score an empty prediction set")
    return float((truth == predictions).mean())


def posterior_accuracy(truth: np.ndarray, posterior: np.ndarray) -> float:
    """Accuracy of the argmax of a ``(I, K)`` posterior.

    This is how the paper scores *inference* quality on the training set
    (the Inference column of Tables II/III): the posterior is the method's
    truth estimate — ``qf(t)`` for Logic-LNCL, MV/GLAD outputs, etc.
    """
    posterior = np.asarray(posterior)
    if posterior.ndim != 2:
        raise ValueError(f"posterior must be (I, K), got shape {posterior.shape}")
    return accuracy(truth, posterior.argmax(axis=1))


def per_class_accuracy(truth: np.ndarray, predictions: np.ndarray, num_classes: int) -> np.ndarray:
    """Recall of each class, shape ``(K,)``; NaN for absent classes."""
    truth = np.asarray(truth)
    predictions = np.asarray(predictions)
    out = np.full(num_classes, np.nan)
    for k in range(num_classes):
        mask = truth == k
        if mask.any():
            out[k] = float((predictions[mask] == k).mean())
    return out
