"""Annotator-reliability recovery metrics (paper Fig. 6/7).

Fig. 6/7 compare Logic-LNCL's estimated confusion matrices against the
"real" ones computed from each annotator's labels and the ground truth, and
scatter estimated-vs-real overall reliability (mean diagonal), reporting
Pearson correlations of ~0.92 (sentiment) and ~0.91 (NER).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .statistics import pearson_correlation

__all__ = ["overall_reliability", "confusion_mae", "ReliabilityComparison", "compare_reliability"]


def overall_reliability(confusions: np.ndarray) -> np.ndarray:
    """Mean diagonal of each annotator's confusion matrix.

    This is the scalar the paper plots in Fig. 6b/7b ("divide the sum of
    the diagonal values by K").
    """
    confusions = np.asarray(confusions)
    if confusions.ndim == 2:
        confusions = confusions[None]
    K = confusions.shape[1]
    if confusions.shape[2] != K:
        raise ValueError(f"confusions must be (J, K, K), got {confusions.shape}")
    return np.einsum("jkk->j", confusions) / K


def confusion_mae(estimated: np.ndarray, real: np.ndarray) -> float:
    """Mean absolute entrywise error between matched confusion matrices."""
    estimated = np.asarray(estimated)
    real = np.asarray(real)
    if estimated.shape != real.shape:
        raise ValueError(f"shape mismatch: {estimated.shape} vs {real.shape}")
    return float(np.abs(estimated - real).mean())


@dataclass
class ReliabilityComparison:
    """Summary of estimated-vs-real annotator reliability."""

    pearson: float
    mae: float
    estimated: np.ndarray
    real: np.ndarray


def compare_reliability(
    estimated_confusions: np.ndarray,
    real_confusions: np.ndarray,
    min_labels: int | None = None,
    counts: np.ndarray | None = None,
) -> ReliabilityComparison:
    """Compare estimated and empirical annotator reliability.

    Parameters
    ----------
    estimated_confusions, real_confusions:
        ``(J, K, K)`` stacks.
    min_labels, counts:
        Optionally exclude annotators with fewer than ``min_labels``
        annotations (Fig. 6b drops annotators with ≤5 labels, whose
        empirical reliability is meaningless).
    """
    estimated = np.asarray(estimated_confusions)
    real = np.asarray(real_confusions)
    if estimated.shape != real.shape:
        raise ValueError(f"shape mismatch: {estimated.shape} vs {real.shape}")
    keep = np.ones(estimated.shape[0], dtype=bool)
    if min_labels is not None:
        if counts is None:
            raise ValueError("min_labels filtering requires per-annotator counts")
        keep = np.asarray(counts) >= min_labels
    estimated_score = overall_reliability(estimated[keep])
    real_score = overall_reliability(real[keep])
    return ReliabilityComparison(
        pearson=pearson_correlation(estimated_score, real_score),
        mae=confusion_mae(estimated[keep], real[keep]),
        estimated=estimated_score,
        real=real_score,
    )
