"""Programmatic weak supervision (the paper's §VIII extension).

The paper notes that LNCL methods transfer to weak supervision, where the
"annotators" are *labeling functions* (LFs) — small programs that either
vote a label or abstain (Snorkel/Wrench style). Because an LF's outputs
form exactly the sparse instance × source label matrix that
:class:`~repro.crowd.CrowdLabelMatrix` models, Logic-LNCL runs on LF
supervision unchanged: each LF gets a confusion matrix, Eq. 13 combines LF
votes with the classifier, and the logic rules distill exactly as before.

This module provides the LF abstraction plus two concrete families:

* :class:`KeywordLF` — votes a class when any trigger token appears
  (the canonical text LF);
* :class:`NoisyOracleLF` — a synthetic program with configurable coverage
  and accuracy, for controlled experiments.
"""

from __future__ import annotations

import numpy as np

from ..crowd.types import MISSING, CrowdLabelMatrix
from ..data.datasets import TextClassificationDataset

__all__ = ["ABSTAIN", "LabelingFunction", "KeywordLF", "NoisyOracleLF", "apply_labeling_functions"]

ABSTAIN = MISSING


class LabelingFunction:
    """Base class: a named program mapping one instance to a vote.

    Subclasses implement :meth:`vote`, returning a class id or
    :data:`ABSTAIN`.
    """

    def __init__(self, name: str) -> None:
        if not name:
            raise ValueError("labeling function needs a non-empty name")
        self.name = name

    def vote(self, tokens: np.ndarray, length: int) -> int:
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.name!r})"


class KeywordLF(LabelingFunction):
    """Vote ``label`` when any trigger token id occurs; abstain otherwise."""

    def __init__(self, name: str, trigger_ids, label: int) -> None:
        super().__init__(name)
        self.trigger_ids = frozenset(int(t) for t in trigger_ids)
        if not self.trigger_ids:
            raise ValueError("keyword LF needs at least one trigger token")
        if label < 0:
            raise ValueError("label must be a valid class id")
        self.label = int(label)

    def vote(self, tokens: np.ndarray, length: int) -> int:
        window = tokens[:length]
        for token in window:
            if int(token) in self.trigger_ids:
                return self.label
        return ABSTAIN


class NoisyOracleLF(LabelingFunction):
    """Synthetic LF: fires on a fixed fraction of instances with fixed accuracy.

    Votes are precomputed against the ground truth at construction time, so
    the LF is a deterministic program thereafter (like a real LF would be).
    """

    def __init__(
        self,
        name: str,
        truth: np.ndarray,
        num_classes: int,
        coverage: float,
        accuracy: float,
        rng: np.random.Generator,
    ) -> None:
        super().__init__(name)
        if not 0.0 < coverage <= 1.0:
            raise ValueError(f"coverage must be in (0, 1], got {coverage}")
        if not 0.0 <= accuracy <= 1.0:
            raise ValueError(f"accuracy must be in [0, 1], got {accuracy}")
        truth = np.asarray(truth)
        fires = rng.random(truth.shape[0]) < coverage
        correct = rng.random(truth.shape[0]) < accuracy
        wrong = np.array(
            [
                (t + 1 + rng.integers(num_classes - 1)) % num_classes if num_classes > 1 else t
                for t in truth
            ]
        )
        votes = np.where(correct, truth, wrong)
        self._votes = np.where(fires, votes, ABSTAIN)

    def vote(self, tokens: np.ndarray, length: int) -> int:
        raise TypeError(
            "NoisyOracleLF votes are positional; use vote_at(instance_index)"
        )

    def vote_at(self, instance_index: int) -> int:
        return int(self._votes[instance_index])


def apply_labeling_functions(
    lfs: list[LabelingFunction],
    dataset: TextClassificationDataset,
    require_full_coverage: bool = False,
) -> CrowdLabelMatrix:
    """Run every LF on every instance → a crowd-label matrix.

    Each LF plays the role of one annotator; abstentions become missing
    labels. Instances no LF covers keep an all-missing row (they fall back
    to the classifier prediction inside Logic-LNCL's Eq. 13); pass
    ``require_full_coverage=True`` to treat that as an error instead.
    """
    if not lfs:
        raise ValueError("need at least one labeling function")
    I = len(dataset)
    labels = np.full((I, len(lfs)), MISSING, dtype=np.int64)
    for j, lf in enumerate(lfs):
        if isinstance(lf, NoisyOracleLF):
            for i in range(I):
                labels[i, j] = lf.vote_at(i)
        else:
            for i in range(I):
                labels[i, j] = lf.vote(dataset.tokens[i], int(dataset.lengths[i]))
    covered = (labels != MISSING).any(axis=1)
    if require_full_coverage and not covered.all():
        uncovered = int((~covered).sum())
        raise ValueError(
            f"{uncovered} instances received no LF vote; add broader LFs or "
            "filter the dataset to covered instances first"
        )
    return CrowdLabelMatrix(labels, dataset.num_classes)


def covered_instances(crowd: CrowdLabelMatrix) -> np.ndarray:
    """Indices of instances that received at least one LF vote."""
    return np.nonzero(crowd.observed_mask.any(axis=1))[0]
