"""Weak supervision via labeling functions (paper §VIII future-work
direction, realized): LF outputs are crowd labels, so Logic-LNCL and every
baseline run on programmatic supervision unchanged."""

from .labeling_functions import (
    ABSTAIN,
    KeywordLF,
    LabelingFunction,
    NoisyOracleLF,
    apply_labeling_functions,
    covered_instances,
)

__all__ = [
    "ABSTAIN",
    "LabelingFunction",
    "KeywordLF",
    "NoisyOracleLF",
    "apply_labeling_functions",
    "covered_instances",
]
