"""Reverse-mode automatic differentiation on NumPy arrays.

This module is the foundation of the paper-reproduction stack: the original
work trains its classifiers with PyTorch on a Tesla V100, which is not
available offline, so we re-implement the needed subset of a deep-learning
framework on top of NumPy (substitution S1 in DESIGN.md).

The design is a vectorized "micrograd": every :class:`Tensor` wraps one
``numpy.ndarray`` and records a closure that, given the gradient of the loss
with respect to the tensor, accumulates gradients into its parents.
:meth:`Tensor.backward` runs those closures in reverse topological order.

Only the operations required by the paper's two architectures (Kim-CNN and
the CNN+GRU tagger) and by the Logic-LNCL training objectives are
implemented, but they are implemented fully (broadcasting, slicing,
reductions with keepdims, etc.) so the layer library in
:mod:`repro.autodiff.nn` can be written naturally.

Performance notes (the engine sits under the GRU time loop, so per-node
overhead is a first-order cost):

* ``__slots__`` on :class:`Tensor` and an iterative topological sort keep
  node bookkeeping cheap and recursion-free.
* Every operator checks :func:`_tracking` *before* building its backward
  closure; under :class:`no_grad` (or on constant inputs) the op is a plain
  NumPy call plus one ``Tensor`` wrapper and records nothing.
* Small Python scalars coerced into tensors (loss scalings, mask
  complements, ...) are interned in a bounded constant cache instead of
  re-wrapped on every call.
* Basic-slice ``__getitem__`` accumulates its backward gradient in place
  into the parent's buffer (:meth:`Tensor._accumulate_at`) instead of
  allocating a full zero array per consumer — the GRU reads one timestep
  per loop iteration, so this turns an O(T^2) backward memory traffic into
  O(T).
* :func:`tape_node_count` exposes a monotonic counter of recorded tape
  entries, used by evaluation regression tests ("prediction builds zero
  nodes") and by the benchmark harness.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

__all__ = ["Tensor", "no_grad", "is_grad_enabled", "tape_node_count"]

_GRAD_ENABLED = True

# Monotonic count of tape entries recorded since process start.
_TAPE_NODES = 0

# Interned scalar constants (floats/ints coerced inside arithmetic ops).
_CONST_CACHE: dict[float, "Tensor"] = {}
_CONST_CACHE_MAX = 512


def tape_node_count() -> int:
    """Total number of tape entries recorded so far (monotonic).

    Take a delta around a code region to assert how many graph nodes it
    built; evaluation paths guarded by :class:`no_grad` must build zero.
    """
    return _TAPE_NODES


class no_grad:
    """Context manager that disables graph construction.

    Used at evaluation time; mirrors ``torch.no_grad``. Operations executed
    inside the context produce tensors with no parents and no backward
    closures — the closure is never even constructed — so no memory or time
    is spent on the tape.
    """

    def __enter__(self) -> "no_grad":
        global _GRAD_ENABLED
        self._previous = _GRAD_ENABLED
        _GRAD_ENABLED = False
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        global _GRAD_ENABLED
        _GRAD_ENABLED = self._previous


def is_grad_enabled() -> bool:
    """Return whether new operations will be recorded on the tape."""
    return _GRAD_ENABLED


def _unbroadcast(grad: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
    """Reduce ``grad`` so it matches ``shape`` after a broadcast op.

    NumPy broadcasting can prepend axes and stretch length-1 axes; the
    gradient of a broadcast is the sum over the broadcast axes.
    """
    if grad.shape == shape:
        return grad
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    stretched = tuple(i for i, n in enumerate(shape) if n == 1 and grad.shape[i] != 1)
    if stretched:
        grad = grad.sum(axis=stretched, keepdims=True)
    return grad.reshape(shape)


def _as_array(value) -> np.ndarray:
    if isinstance(value, np.ndarray):
        return value if value.dtype == np.float64 else value.astype(np.float64)
    return np.asarray(value, dtype=np.float64)


def _tracking(*tensors: "Tensor") -> bool:
    """True when an op over ``tensors`` must record a tape entry."""
    if not _GRAD_ENABLED:
        return False
    for t in tensors:
        if t.requires_grad or t._backward_fn is not None:
            return True
    return False


_BASIC_INDEX_TYPES = (int, np.integer, slice, type(None), type(Ellipsis))


def _is_basic_index(index) -> bool:
    """True for indices with no fancy/boolean components (no duplicates)."""
    if isinstance(index, tuple):
        return all(isinstance(part, _BASIC_INDEX_TYPES) for part in index)
    return isinstance(index, _BASIC_INDEX_TYPES)


class Tensor:
    """A NumPy array plus an entry on the autodiff tape.

    Parameters
    ----------
    data:
        Array-like payload; stored as ``float64``.
    requires_grad:
        If true, :meth:`backward` will leave the accumulated gradient in
        :attr:`grad` for this tensor (i.e. this is a leaf/parameter).
    name:
        Optional label used in ``repr`` and error messages.
    """

    __slots__ = ("data", "grad", "requires_grad", "_parents", "_backward_fn", "name")

    def __init__(self, data, requires_grad: bool = False, name: str | None = None) -> None:
        self.data = _as_array(data)
        self.grad: np.ndarray | None = None
        self.requires_grad = bool(requires_grad)
        self._parents: tuple[Tensor, ...] = ()
        self._backward_fn: Callable[[np.ndarray], None] | None = None
        self.name = name

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:
        label = f" name={self.name!r}" if self.name else ""
        return f"Tensor(shape={self.shape}, requires_grad={self.requires_grad}{label})"

    def numpy(self) -> np.ndarray:
        """Return the underlying array (not a copy)."""
        return self.data

    def item(self) -> float:
        """Return the scalar payload of a 1-element tensor."""
        if self.data.size != 1:
            raise ValueError(f"item() requires a 1-element tensor, got shape {self.shape}")
        return float(self.data.reshape(()))

    def detach(self) -> "Tensor":
        """Return a tensor sharing data but cut off from the graph."""
        return Tensor(self.data)

    # ------------------------------------------------------------------ #
    # Graph plumbing
    # ------------------------------------------------------------------ #
    @staticmethod
    def _link(
        data: np.ndarray,
        parents: Sequence["Tensor"],
        backward_fn: Callable[[np.ndarray], None],
    ) -> "Tensor":
        """Create an op output and unconditionally record the tape entry.

        Callers must have already checked :func:`_tracking`; this split lets
        hot ops skip closure construction entirely on the no-grad path.
        """
        global _TAPE_NODES
        out = Tensor(data)
        out._parents = tuple(parents)
        out._backward_fn = backward_fn
        _TAPE_NODES += 1
        return out

    @staticmethod
    def _make(
        data: np.ndarray,
        parents: Sequence["Tensor"],
        backward_fn: Callable[[np.ndarray], None],
    ) -> "Tensor":
        """Create an op output, recording the tape entry only when needed.

        Convenience wrapper for composite ops whose closure construction is
        cheap relative to the forward math; hot ops use the explicit
        ``if _tracking(...): Tensor._link(...)`` pattern instead.
        """
        if _tracking(*parents):
            return Tensor._link(data, parents, backward_fn)
        return Tensor(data)

    @property
    def _tracked(self) -> bool:
        """True when gradients must flow through (or stop at) this tensor."""
        return self.requires_grad or self._backward_fn is not None

    def _accumulate(self, grad: np.ndarray) -> None:
        """Add ``grad`` into this tensor's buffer (leaves and intermediates).

        Intermediates need a buffer too, so diamond-shaped graphs sum the
        contributions from every consumer before the node's own backward
        closure runs.
        """
        if not self._tracked:
            return
        if self.grad is None:
            # First contribution: copy instead of zeros+add (half the
            # memory traffic; closures hand over freshly built arrays).
            if grad.shape == self.data.shape:
                self.grad = np.array(grad, dtype=np.float64, copy=True)
            else:
                self.grad = np.zeros_like(self.data)
                self.grad += grad
        else:
            self.grad += grad

    def _accumulate_owned(self, grad: np.ndarray) -> None:
        """Like :meth:`_accumulate`, but takes ownership of ``grad``.

        Only call with a freshly allocated array (or a view of one) that
        the caller will not touch again; the first contribution is then
        stored without a defensive copy.
        """
        if not self._tracked:
            return
        if self.grad is None and grad.shape == self.data.shape:
            self.grad = np.ascontiguousarray(grad)
        else:
            self._accumulate(grad)

    def _accumulate_at(self, index, grad: np.ndarray) -> None:
        """Add ``grad`` into ``self.grad[index]`` without a full-size temp.

        Only valid for *basic* indices (no duplicated positions), where
        in-place ``+=`` on the slice is exact.
        """
        if not self._tracked:
            return
        if self.grad is None:
            self.grad = np.zeros_like(self.data)
        self.grad[index] += grad

    def zero_grad(self) -> None:
        """Reset the gradient buffer."""
        self.grad = None

    def _topo_order(self) -> list["Tensor"]:
        order: list[Tensor] = []
        visited: set[int] = set()
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                order.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if id(parent) not in visited:
                    stack.append((parent, False))
        return order

    def backward(self, grad: np.ndarray | None = None) -> None:
        """Run reverse-mode differentiation from this tensor.

        Gradients of leaf tensors created with ``requires_grad=True`` are
        accumulated into their :attr:`grad`; intermediate buffers are freed
        once consumed.

        Parameters
        ----------
        grad:
            Gradient of the objective w.r.t. this tensor. Defaults to 1.0,
            which requires the tensor to be scalar-shaped.
        """
        if grad is None:
            if self.data.size != 1:
                raise ValueError(
                    "backward() without an explicit gradient requires a scalar "
                    f"tensor, got shape {self.shape}"
                )
            grad = np.ones_like(self.data)
        else:
            grad = _as_array(grad)
            if grad.shape != self.data.shape:
                raise ValueError(
                    f"gradient shape {grad.shape} does not match tensor shape {self.shape}"
                )

        order = self._topo_order()
        # Stale intermediate buffers from a previous pass must not leak in.
        for node in order:
            if node._backward_fn is not None and node is not self:
                node.grad = None

        self._accumulate(grad)
        for node in reversed(order):
            if node._backward_fn is None or node.grad is None:
                continue
            node_grad, node.grad = node.grad, None
            node._backward_fn(node_grad)
            if node.requires_grad:
                # Rare case: a tracked intermediate explicitly marked as a
                # leaf as well; keep its gradient visible.
                node.grad = node_grad

    # ------------------------------------------------------------------ #
    # Arithmetic
    # ------------------------------------------------------------------ #
    @staticmethod
    def _coerce(other) -> "Tensor":
        if isinstance(other, Tensor):
            return other
        if isinstance(other, (int, float)) and not isinstance(other, bool):
            key = float(other)
            cached = _CONST_CACHE.get(key)
            if cached is not None:
                return cached
            cached = Tensor(key)
            if len(_CONST_CACHE) < _CONST_CACHE_MAX:
                _CONST_CACHE[key] = cached
            return cached
        return Tensor(other)

    def __add__(self, other) -> "Tensor":
        other = self._coerce(other)
        out_data = self.data + other.data
        if not _tracking(self, other):
            return Tensor(out_data)

        def backward_fn(grad: np.ndarray) -> None:
            self._accumulate(_unbroadcast(grad, self.data.shape))
            other._accumulate(_unbroadcast(grad, other.data.shape))

        return Tensor._link(out_data, (self, other), backward_fn)

    __radd__ = __add__

    def __neg__(self) -> "Tensor":
        if not _tracking(self):
            return Tensor(-self.data)

        def backward_fn(grad: np.ndarray) -> None:
            self._accumulate(-grad)

        return Tensor._link(-self.data, (self,), backward_fn)

    def __sub__(self, other) -> "Tensor":
        other = self._coerce(other)
        out_data = self.data - other.data
        if not _tracking(self, other):
            return Tensor(out_data)

        def backward_fn(grad: np.ndarray) -> None:
            self._accumulate(_unbroadcast(grad, self.data.shape))
            other._accumulate(_unbroadcast(-grad, other.data.shape))

        return Tensor._link(out_data, (self, other), backward_fn)

    def __rsub__(self, other) -> "Tensor":
        return Tensor._coerce(other).__sub__(self)

    def __mul__(self, other) -> "Tensor":
        other = self._coerce(other)
        out_data = self.data * other.data
        if not _tracking(self, other):
            return Tensor(out_data)

        def backward_fn(grad: np.ndarray) -> None:
            self._accumulate(_unbroadcast(grad * other.data, self.data.shape))
            other._accumulate(_unbroadcast(grad * self.data, other.data.shape))

        return Tensor._link(out_data, (self, other), backward_fn)

    __rmul__ = __mul__

    def __truediv__(self, other) -> "Tensor":
        other = self._coerce(other)
        out_data = self.data / other.data
        if not _tracking(self, other):
            return Tensor(out_data)

        def backward_fn(grad: np.ndarray) -> None:
            self._accumulate(_unbroadcast(grad / other.data, self.data.shape))
            other._accumulate(
                _unbroadcast(-grad * self.data / (other.data**2), other.data.shape)
            )

        return Tensor._link(out_data, (self, other), backward_fn)

    def __rtruediv__(self, other) -> "Tensor":
        return Tensor._coerce(other).__truediv__(self)

    def __pow__(self, exponent) -> "Tensor":
        if not isinstance(exponent, (int, float)):
            raise TypeError("only scalar exponents are supported")
        out_data = self.data**exponent
        if not _tracking(self):
            return Tensor(out_data)

        if exponent == 2:
            # Hot case (squared losses): avoid the elementwise pow call.
            def backward_fn(grad: np.ndarray) -> None:
                self._accumulate(grad * 2.0 * self.data)

        else:

            def backward_fn(grad: np.ndarray) -> None:
                self._accumulate(grad * exponent * self.data ** (exponent - 1))

        return Tensor._link(out_data, (self,), backward_fn)

    def __matmul__(self, other) -> "Tensor":
        other = self._coerce(other)
        if self.data.ndim < 2 or other.data.ndim < 2:
            raise ValueError("matmul requires operands with ndim >= 2")
        out_data = self.data @ other.data
        if not _tracking(self, other):
            return Tensor(out_data)

        def backward_fn(grad: np.ndarray) -> None:
            # The products below are fresh arrays, so ownership transfers.
            if self._tracked:
                g = grad @ np.swapaxes(other.data, -1, -2)
                self._accumulate_owned(_unbroadcast(g, self.data.shape))
            if other._tracked:
                g = np.swapaxes(self.data, -1, -2) @ grad
                other._accumulate_owned(_unbroadcast(g, other.data.shape))

        return Tensor._link(out_data, (self, other), backward_fn)

    # ------------------------------------------------------------------ #
    # Elementwise nonlinearities
    # ------------------------------------------------------------------ #
    def exp(self) -> "Tensor":
        out_data = np.exp(self.data)
        if not _tracking(self):
            return Tensor(out_data)

        def backward_fn(grad: np.ndarray) -> None:
            self._accumulate(grad * out_data)

        return Tensor._link(out_data, (self,), backward_fn)

    def log(self) -> "Tensor":
        out_data = np.log(self.data)
        if not _tracking(self):
            return Tensor(out_data)

        def backward_fn(grad: np.ndarray) -> None:
            self._accumulate(grad / self.data)

        return Tensor._link(out_data, (self,), backward_fn)

    def tanh(self) -> "Tensor":
        out_data = np.tanh(self.data)
        if not _tracking(self):
            return Tensor(out_data)

        def backward_fn(grad: np.ndarray) -> None:
            self._accumulate(grad * (1.0 - out_data**2))

        return Tensor._link(out_data, (self,), backward_fn)

    def sigmoid(self) -> "Tensor":
        # (1 + tanh(x/2)) / 2: overflow-free for any input and a single
        # vectorized transcendental, vs. the usual two-branch exp form.
        out_data = 0.5 * (1.0 + np.tanh(0.5 * self.data))
        if not _tracking(self):
            return Tensor(out_data)

        def backward_fn(grad: np.ndarray) -> None:
            self._accumulate(grad * out_data * (1.0 - out_data))

        return Tensor._link(out_data, (self,), backward_fn)

    def relu(self) -> "Tensor":
        mask = self.data > 0
        out_data = self.data * mask
        if not _tracking(self):
            return Tensor(out_data)

        def backward_fn(grad: np.ndarray) -> None:
            self._accumulate(grad * mask)

        return Tensor._link(out_data, (self,), backward_fn)

    def clip(self, low: float, high: float) -> "Tensor":
        """Clamp values; gradient flows only through the unclipped region."""
        out_data = np.clip(self.data, low, high)
        if not _tracking(self):
            return Tensor(out_data)
        mask = (self.data >= low) & (self.data <= high)

        def backward_fn(grad: np.ndarray) -> None:
            self._accumulate(grad * mask)

        return Tensor._link(out_data, (self,), backward_fn)

    # ------------------------------------------------------------------ #
    # Reductions
    # ------------------------------------------------------------------ #
    def sum(self, axis: int | tuple[int, ...] | None = None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.sum(axis=axis, keepdims=keepdims)
        if not _tracking(self):
            return Tensor(out_data)

        def backward_fn(grad: np.ndarray) -> None:
            g = grad
            if axis is not None and not keepdims:
                axes = (axis,) if isinstance(axis, int) else axis
                for ax in sorted(a % self.data.ndim for a in axes):
                    g = np.expand_dims(g, ax)
            self._accumulate_owned(np.broadcast_to(g, self.data.shape).copy())

        return Tensor._link(out_data, (self,), backward_fn)

    def mean(self, axis: int | tuple[int, ...] | None = None, keepdims: bool = False) -> "Tensor":
        if axis is None:
            count = self.data.size
        else:
            axes = (axis,) if isinstance(axis, int) else axis
            count = int(np.prod([self.data.shape[a] for a in axes]))
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def max(self, axis: int, keepdims: bool = False) -> "Tensor":
        """Max along one axis; gradient is routed to the first argmax entry."""
        out_data = self.data.max(axis=axis, keepdims=keepdims)
        if not _tracking(self):
            return Tensor(out_data)
        expanded = self.data.max(axis=axis, keepdims=True)
        mask = self.data == expanded
        first = np.cumsum(mask, axis=axis) == 1
        mask = mask & first

        def backward_fn(grad: np.ndarray) -> None:
            g = grad if keepdims else np.expand_dims(grad, axis)
            self._accumulate(mask * g)

        return Tensor._link(out_data, (self,), backward_fn)

    # ------------------------------------------------------------------ #
    # Shape manipulation
    # ------------------------------------------------------------------ #
    def reshape(self, *shape) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        out_data = self.data.reshape(shape)
        if not _tracking(self):
            return Tensor(out_data)

        def backward_fn(grad: np.ndarray) -> None:
            self._accumulate(grad.reshape(self.data.shape))

        return Tensor._link(out_data, (self,), backward_fn)

    def transpose(self, *axes: int) -> "Tensor":
        axes_tuple = axes if axes else tuple(reversed(range(self.data.ndim)))
        out_data = self.data.transpose(axes_tuple)
        if not _tracking(self):
            return Tensor(out_data)
        inverse = tuple(np.argsort(axes_tuple))

        def backward_fn(grad: np.ndarray) -> None:
            self._accumulate(grad.transpose(inverse))

        return Tensor._link(out_data, (self,), backward_fn)

    def __getitem__(self, index) -> "Tensor":
        out_data = np.array(self.data[index], copy=True)
        if not _tracking(self):
            return Tensor(out_data)

        if _is_basic_index(index):
            # Basic indices select each source element at most once, so the
            # backward pass can add in place into the parent's buffer — no
            # full-size scratch array per consumer (the GRU slices one
            # timestep per loop iteration; this keeps its backward O(T)).
            def backward_fn(grad: np.ndarray) -> None:
                self._accumulate_at(index, grad)

        else:

            def backward_fn(grad: np.ndarray) -> None:
                full = np.zeros_like(self.data)
                np.add.at(full, index, grad)
                self._accumulate(full)

        return Tensor._link(out_data, (self,), backward_fn)

    # ------------------------------------------------------------------ #
    # Convenience constructors
    # ------------------------------------------------------------------ #
    @staticmethod
    def zeros(*shape: int, requires_grad: bool = False) -> "Tensor":
        return Tensor(np.zeros(shape), requires_grad=requires_grad)

    @staticmethod
    def ones(*shape: int, requires_grad: bool = False) -> "Tensor":
        return Tensor(np.ones(shape), requires_grad=requires_grad)

    @staticmethod
    def from_numpy(array: np.ndarray, requires_grad: bool = False) -> "Tensor":
        return Tensor(array, requires_grad=requires_grad)
