"""Reverse-mode automatic differentiation on NumPy arrays.

This module is the foundation of the paper-reproduction stack: the original
work trains its classifiers with PyTorch on a Tesla V100, which is not
available offline, so we re-implement the needed subset of a deep-learning
framework on top of NumPy (substitution S1 in DESIGN.md).

The design is a vectorized "micrograd" with an autograd-style split: every
:class:`Tensor` wraps one ``numpy.ndarray``, and each op records a tape
entry ``(primitive, parents, ans, ctx)`` — the *name* of the op plus the
saved values its gradient needs — instead of a baked backward closure.
:meth:`Tensor.backward` walks the tape in reverse topological order and
dispatches each entry through the per-primitive VJP registry in
:mod:`repro.autodiff.vjps`, which is the single place that says how
gradients flow.

Only the operations required by the paper's two architectures (Kim-CNN and
the CNN+GRU tagger) and by the Logic-LNCL training objectives are
implemented, but they are implemented fully (broadcasting, slicing,
reductions with keepdims, etc.) so the layer library in
:mod:`repro.autodiff.nn` can be written naturally.

Dtypes follow the policy in :mod:`repro.autodiff.dtypes`: float64 is the
reference path (all equivalence and gradcheck contracts), float32 the
training fast path. Wrapping preserves an array's float dtype; scalars and
non-float data take the ambient default; gradients accumulate into each
tensor's buffer in that tensor's own dtype, so mixed-precision graphs
(e.g. a float32 model under a float64 loss scale) stay well-defined.

Performance notes (the engine sits under the GRU time loop, so per-node
overhead is a first-order cost):

* ``__slots__`` on :class:`Tensor` and an iterative topological sort keep
  node bookkeeping cheap and recursion-free.
* Every operator checks :func:`_tracking` *before* recording; under
  :class:`no_grad` (or on constant inputs) the op is a plain NumPy call
  plus one ``Tensor`` wrapper and records nothing.
* Small Python scalars coerced into tensors (loss scalings, mask
  complements, ...) are interned in a bounded constant cache — keyed by
  ``(value, default dtype)`` so a cached float64 constant can never leak
  into a float32 graph — instead of re-wrapped on every call.
* Basic-slice ``__getitem__`` accumulates its backward gradient in place
  into the parent's buffer (:meth:`Tensor._accumulate_at`) instead of
  allocating a full zero array per consumer — the GRU reads one timestep
  per loop iteration, so this turns an O(T^2) backward memory traffic into
  O(T).
* :func:`tape_node_count` exposes a monotonic counter of recorded tape
  entries, used by evaluation regression tests ("prediction builds zero
  nodes") and by the benchmark harness.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from . import vjps as _vjps
from .dtypes import get_default_dtype, is_float_dtype, resolve_dtype

__all__ = ["Tensor", "no_grad", "is_grad_enabled", "tape_node_count"]

_GRAD_ENABLED = True

# Monotonic count of tape entries recorded since process start.
_TAPE_NODES = 0

# Interned scalar constants (floats/ints coerced inside arithmetic ops),
# keyed by (value, dtype char) so each precision gets its own interning.
_CONST_CACHE: dict[tuple[float, str], "Tensor"] = {}
_CONST_CACHE_MAX = 512


def tape_node_count() -> int:
    """Total number of tape entries recorded so far (monotonic).

    Take a delta around a code region to assert how many graph nodes it
    built; evaluation paths guarded by :class:`no_grad` must build zero.
    """
    return _TAPE_NODES


class no_grad:
    """Context manager that disables graph construction.

    Used at evaluation time; mirrors ``torch.no_grad``. Operations executed
    inside the context produce tensors with no parents and no tape entry —
    the saved context is never even built — so no memory or time is spent
    on the tape.
    """

    def __enter__(self) -> "no_grad":
        global _GRAD_ENABLED
        self._previous = _GRAD_ENABLED
        _GRAD_ENABLED = False
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        global _GRAD_ENABLED
        _GRAD_ENABLED = self._previous


def is_grad_enabled() -> bool:
    """Return whether new operations will be recorded on the tape."""
    return _GRAD_ENABLED


def _as_array(value, dtype=None) -> np.ndarray:
    """Coerce ``value`` under the dtype policy (see ``autodiff.dtypes``).

    An explicit ``dtype`` wins; a float array keeps its own dtype; anything
    else takes the ambient default.
    """
    if isinstance(value, np.ndarray):
        if dtype is None:
            target = value.dtype if is_float_dtype(value.dtype) else get_default_dtype()
        else:
            target = resolve_dtype(dtype)
        return value if value.dtype == target else value.astype(target)
    return np.asarray(value, dtype=resolve_dtype(dtype))


def _tracking(*tensors: "Tensor") -> bool:
    """True when an op over ``tensors`` must record a tape entry."""
    if not _GRAD_ENABLED:
        return False
    for t in tensors:
        if t.requires_grad or t._op is not None:
            return True
    return False


_BASIC_INDEX_TYPES = (int, np.integer, slice, type(None), type(Ellipsis))


def _is_basic_index(index) -> bool:
    """True for indices with no fancy/boolean components (no duplicates)."""
    if isinstance(index, tuple):
        return all(isinstance(part, _BASIC_INDEX_TYPES) for part in index)
    return isinstance(index, _BASIC_INDEX_TYPES)


class Tensor:
    """A NumPy array plus an entry on the autodiff tape.

    Parameters
    ----------
    data:
        Array-like payload; float arrays keep their dtype, everything else
        is stored at the policy default (float64 unless changed).
    requires_grad:
        If true, :meth:`backward` will leave the accumulated gradient in
        :attr:`grad` for this tensor (i.e. this is a leaf/parameter).
    name:
        Optional label used in ``repr`` and error messages.
    dtype:
        Optional explicit dtype (float32/float64); overrides the policy.
    """

    __slots__ = ("data", "grad", "requires_grad", "_parents", "_op", "_ctx", "name")

    def __init__(
        self,
        data,
        requires_grad: bool = False,
        name: str | None = None,
        dtype=None,
    ) -> None:
        self.data = _as_array(data, dtype)
        self.grad: np.ndarray | None = None
        self.requires_grad = bool(requires_grad)
        self._parents: tuple[Tensor, ...] = ()
        self._op: str | None = None
        self._ctx: tuple = ()
        self.name = name

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def dtype(self) -> np.dtype:
        return self.data.dtype

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:
        label = f" name={self.name!r}" if self.name else ""
        return f"Tensor(shape={self.shape}, requires_grad={self.requires_grad}{label})"

    def numpy(self) -> np.ndarray:
        """Return the underlying array (not a copy)."""
        return self.data

    def item(self) -> float:
        """Return the scalar payload of a 1-element tensor."""
        if self.data.size != 1:
            raise ValueError(f"item() requires a 1-element tensor, got shape {self.shape}")
        return float(self.data.reshape(()))

    def detach(self) -> "Tensor":
        """Return a tensor sharing data but cut off from the graph."""
        return Tensor(self.data)

    # ------------------------------------------------------------------ #
    # Graph plumbing
    # ------------------------------------------------------------------ #
    @staticmethod
    def _link(
        data: np.ndarray,
        parents: Sequence["Tensor"],
        op: str,
        ctx: tuple = (),
    ) -> "Tensor":
        """Create an op output and unconditionally record the tape entry.

        ``op`` names a primitive registered in :mod:`repro.autodiff.vjps`;
        ``ctx`` is the saved context its VJPs receive after ``(g, ans)``.
        Callers must have already checked :func:`_tracking`; this split
        lets hot ops skip context construction entirely on the no-grad
        path.
        """
        global _TAPE_NODES
        out = Tensor(data)
        out._parents = tuple(parents)
        out._op = op
        out._ctx = ctx
        _TAPE_NODES += 1
        return out

    @staticmethod
    def _make(
        data: np.ndarray,
        parents: Sequence["Tensor"],
        op: str,
        ctx: tuple = (),
    ) -> "Tensor":
        """Create an op output, recording the tape entry only when needed.

        Convenience wrapper for composite ops whose context construction is
        cheap relative to the forward math; hot ops use the explicit
        ``if _tracking(...): Tensor._link(...)`` pattern instead.
        """
        if _tracking(*parents):
            return Tensor._link(data, parents, op, ctx)
        return Tensor(data)

    @property
    def _tracked(self) -> bool:
        """True when gradients must flow through (or stop at) this tensor."""
        return self.requires_grad or self._op is not None

    def _accumulate(self, grad: np.ndarray) -> None:
        """Add ``grad`` into this tensor's buffer (leaves and intermediates).

        Intermediates need a buffer too, so diamond-shaped graphs sum the
        contributions from every consumer before the node's own VJPs run.
        The buffer always takes this tensor's own dtype, which is what
        keeps parameter gradients in the parameter's precision even when a
        downstream op promoted.
        """
        if not self._tracked:
            return
        if self.grad is None:
            # First contribution: copy instead of zeros+add (half the
            # memory traffic; VJPs hand over freshly built arrays).
            if grad.shape == self.data.shape:
                self.grad = np.array(grad, dtype=self.data.dtype, copy=True)
            else:
                self.grad = np.zeros_like(self.data)
                self.grad += grad
        else:
            self.grad += grad

    def _accumulate_owned(self, grad: np.ndarray) -> None:
        """Like :meth:`_accumulate`, but takes ownership of ``grad``.

        Only call with a freshly allocated array (or a view of one) that
        the caller will not touch again; the first contribution is then
        stored without a defensive copy (unless a dtype conversion is
        needed anyway).
        """
        if not self._tracked:
            return
        if (
            self.grad is None
            and grad.shape == self.data.shape
            and grad.dtype == self.data.dtype
        ):
            # Note: not np.ascontiguousarray — that call reshapes 0-d
            # arrays to (1,), and scalar losses hand 0-d grads here.
            self.grad = grad if grad.flags.c_contiguous else np.array(grad)
        else:
            self._accumulate(grad)

    def _accumulate_at(self, index, grad: np.ndarray) -> None:
        """Add ``grad`` into ``self.grad[index]`` without a full-size temp.

        Only valid for *basic* indices (no duplicated positions), where
        in-place ``+=`` on the slice is exact.
        """
        if not self._tracked:
            return
        if self.grad is None:
            self.grad = np.zeros_like(self.data)
        self.grad[index] += grad

    def zero_grad(self) -> None:
        """Reset the gradient buffer."""
        self.grad = None

    def _topo_order(self) -> list["Tensor"]:
        order: list[Tensor] = []
        visited: set[int] = set()
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                order.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if id(parent) not in visited:
                    stack.append((parent, False))
        return order

    def _apply_vjps(self, node_grad: np.ndarray) -> None:
        """Dispatch one tape entry through the VJP registry.

        Fused primitives compute every argument gradient jointly (their
        results are always owned); per-argument primitives run only the
        VJPs of tracked parents and accumulate under each entry's
        ownership flag. ``IndexedGrad`` results add in place into the
        parent's buffer slice.
        """
        op = self._op
        parents = self._parents
        fused = _vjps.FUSED_TABLE.get(op)
        if fused is not None:
            needs = tuple(parent._tracked for parent in parents)
            grads = fused(node_grad, self.data, needs, *self._ctx)
            for parent, grad in zip(parents, grads):
                if grad is not None:
                    parent._accumulate_owned(grad)
            return
        fns = _vjps.VJP_TABLE.get(op)
        if fns is None:
            raise KeyError(f"no VJP registered for primitive {op!r}")
        owned = _vjps.VJP_OWNED[op]
        for parent, fn, own in zip(parents, fns, owned):
            if fn is None or not parent._tracked:
                continue
            grad = fn(node_grad, self.data, *self._ctx)
            if type(grad) is _vjps.IndexedGrad:
                parent._accumulate_at(grad.index, grad.grad)
            elif own:
                parent._accumulate_owned(grad)
            else:
                parent._accumulate(grad)

    def backward(self, grad: np.ndarray | None = None) -> None:
        """Run reverse-mode differentiation from this tensor.

        Gradients of leaf tensors created with ``requires_grad=True`` are
        accumulated into their :attr:`grad`; intermediate buffers are freed
        once consumed. Each node's gradient buffer lives in that node's own
        dtype, so every VJP receives ``g`` in the dtype of its primitive's
        output.

        Parameters
        ----------
        grad:
            Gradient of the objective w.r.t. this tensor. Defaults to 1.0,
            which requires the tensor to be scalar-shaped.
        """
        if grad is None:
            if self.data.size != 1:
                raise ValueError(
                    "backward() without an explicit gradient requires a scalar "
                    f"tensor, got shape {self.shape}"
                )
            grad = np.ones_like(self.data)
        else:
            grad = _as_array(grad)
            if grad.shape != self.data.shape:
                raise ValueError(
                    f"gradient shape {grad.shape} does not match tensor shape {self.shape}"
                )

        order = self._topo_order()
        # Stale intermediate buffers from a previous pass must not leak in.
        for node in order:
            if node._op is not None and node is not self:
                node.grad = None

        self._accumulate(grad)
        for node in reversed(order):
            if node._op is None or node.grad is None:
                continue
            node_grad, node.grad = node.grad, None
            node._apply_vjps(node_grad)
            if node.requires_grad:
                # Rare case: a tracked intermediate explicitly marked as a
                # leaf as well; keep its gradient visible.
                node.grad = node_grad

    # ------------------------------------------------------------------ #
    # Arithmetic
    # ------------------------------------------------------------------ #
    @staticmethod
    def _coerce(other) -> "Tensor":
        if isinstance(other, Tensor):
            return other
        if isinstance(other, (int, float)) and not isinstance(other, bool):
            dtype = get_default_dtype()
            key = (float(other), dtype.char)
            cached = _CONST_CACHE.get(key)
            if cached is not None:
                return cached
            cached = Tensor(key[0], dtype=dtype)
            if len(_CONST_CACHE) < _CONST_CACHE_MAX:
                _CONST_CACHE[key] = cached
            return cached
        return Tensor(other)

    def __add__(self, other) -> "Tensor":
        other = self._coerce(other)
        out_data = self.data + other.data
        if not _tracking(self, other):
            return Tensor(out_data)
        return Tensor._link(out_data, (self, other), "add", (self.data, other.data))

    __radd__ = __add__

    def __neg__(self) -> "Tensor":
        if not _tracking(self):
            return Tensor(-self.data)
        return Tensor._link(-self.data, (self,), "neg")

    def __sub__(self, other) -> "Tensor":
        other = self._coerce(other)
        out_data = self.data - other.data
        if not _tracking(self, other):
            return Tensor(out_data)
        return Tensor._link(out_data, (self, other), "sub", (self.data, other.data))

    def __rsub__(self, other) -> "Tensor":
        return Tensor._coerce(other).__sub__(self)

    def __mul__(self, other) -> "Tensor":
        other = self._coerce(other)
        out_data = self.data * other.data
        if not _tracking(self, other):
            return Tensor(out_data)
        return Tensor._link(out_data, (self, other), "mul", (self.data, other.data))

    __rmul__ = __mul__

    def __truediv__(self, other) -> "Tensor":
        other = self._coerce(other)
        out_data = self.data / other.data
        if not _tracking(self, other):
            return Tensor(out_data)
        return Tensor._link(out_data, (self, other), "div", (self.data, other.data))

    def __rtruediv__(self, other) -> "Tensor":
        return Tensor._coerce(other).__truediv__(self)

    def __pow__(self, exponent) -> "Tensor":
        if not isinstance(exponent, (int, float)):
            raise TypeError("only scalar exponents are supported")
        out_data = self.data**exponent
        if not _tracking(self):
            return Tensor(out_data)
        return Tensor._link(out_data, (self,), "pow", (self.data, exponent))

    def __matmul__(self, other) -> "Tensor":
        other = self._coerce(other)
        if self.data.ndim < 2 or other.data.ndim < 2:
            raise ValueError("matmul requires operands with ndim >= 2")
        out_data = self.data @ other.data
        if not _tracking(self, other):
            return Tensor(out_data)
        return Tensor._link(out_data, (self, other), "matmul", (self.data, other.data))

    # ------------------------------------------------------------------ #
    # Elementwise nonlinearities
    # ------------------------------------------------------------------ #
    def exp(self) -> "Tensor":
        out_data = np.exp(self.data)
        if not _tracking(self):
            return Tensor(out_data)
        return Tensor._link(out_data, (self,), "exp")

    def log(self) -> "Tensor":
        out_data = np.log(self.data)
        if not _tracking(self):
            return Tensor(out_data)
        return Tensor._link(out_data, (self,), "log", (self.data,))

    def tanh(self) -> "Tensor":
        out_data = np.tanh(self.data)
        if not _tracking(self):
            return Tensor(out_data)
        return Tensor._link(out_data, (self,), "tanh")

    def sigmoid(self) -> "Tensor":
        # (1 + tanh(x/2)) / 2: overflow-free for any input and a single
        # vectorized transcendental, vs. the usual two-branch exp form.
        out_data = 0.5 * (1.0 + np.tanh(0.5 * self.data))
        if not _tracking(self):
            return Tensor(out_data)
        return Tensor._link(out_data, (self,), "sigmoid")

    def relu(self) -> "Tensor":
        mask = self.data > 0
        out_data = self.data * mask
        if not _tracking(self):
            return Tensor(out_data)
        return Tensor._link(out_data, (self,), "relu", (mask,))

    def clip(self, low: float, high: float) -> "Tensor":
        """Clamp values; gradient flows only through the unclipped region."""
        out_data = np.clip(self.data, low, high)
        if not _tracking(self):
            return Tensor(out_data)
        mask = (self.data >= low) & (self.data <= high)
        return Tensor._link(out_data, (self,), "clip", (mask,))

    # ------------------------------------------------------------------ #
    # Reductions
    # ------------------------------------------------------------------ #
    def sum(self, axis: int | tuple[int, ...] | None = None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.sum(axis=axis, keepdims=keepdims)
        if not _tracking(self):
            return Tensor(out_data)
        return Tensor._link(
            out_data, (self,), "sum", (self.data.shape, axis, keepdims)
        )

    def mean(self, axis: int | tuple[int, ...] | None = None, keepdims: bool = False) -> "Tensor":
        if axis is None:
            count = self.data.size
        else:
            axes = (axis,) if isinstance(axis, int) else axis
            count = int(np.prod([self.data.shape[a] for a in axes]))
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def max(self, axis: int, keepdims: bool = False) -> "Tensor":
        """Max along one axis; gradient is routed to the first argmax entry."""
        out_data = self.data.max(axis=axis, keepdims=keepdims)
        if not _tracking(self):
            return Tensor(out_data)
        expanded = self.data.max(axis=axis, keepdims=True)
        mask = self.data == expanded
        first = np.cumsum(mask, axis=axis) == 1
        mask = mask & first
        return Tensor._link(out_data, (self,), "max", (mask, axis, keepdims))

    # ------------------------------------------------------------------ #
    # Shape manipulation
    # ------------------------------------------------------------------ #
    def reshape(self, *shape) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        out_data = self.data.reshape(shape)
        if not _tracking(self):
            return Tensor(out_data)
        return Tensor._link(out_data, (self,), "reshape", (self.data.shape,))

    def transpose(self, *axes: int) -> "Tensor":
        axes_tuple = axes if axes else tuple(reversed(range(self.data.ndim)))
        out_data = self.data.transpose(axes_tuple)
        if not _tracking(self):
            return Tensor(out_data)
        inverse = tuple(np.argsort(axes_tuple))
        return Tensor._link(out_data, (self,), "transpose", (inverse,))

    def __getitem__(self, index) -> "Tensor":
        out_data = np.array(self.data[index], copy=True)
        if not _tracking(self):
            return Tensor(out_data)
        if _is_basic_index(index):
            # Basic indices select each source element at most once, so the
            # backward pass can add in place into the parent's buffer — no
            # full-size scratch array per consumer (the GRU slices one
            # timestep per loop iteration; this keeps its backward O(T)).
            return Tensor._link(out_data, (self,), "getitem", (index,))
        return Tensor._link(out_data, (self,), "getitem_fancy", (self.data, index))

    # ------------------------------------------------------------------ #
    # Convenience constructors
    # ------------------------------------------------------------------ #
    @staticmethod
    def zeros(*shape: int, requires_grad: bool = False, dtype=None) -> "Tensor":
        return Tensor(np.zeros(shape, dtype=resolve_dtype(dtype)), requires_grad=requires_grad)

    @staticmethod
    def ones(*shape: int, requires_grad: bool = False, dtype=None) -> "Tensor":
        return Tensor(np.ones(shape, dtype=resolve_dtype(dtype)), requires_grad=requires_grad)

    @staticmethod
    def from_numpy(array: np.ndarray, requires_grad: bool = False, dtype=None) -> "Tensor":
        return Tensor(array, requires_grad=requires_grad, dtype=dtype)
