"""Pure-NumPy reverse-mode autodiff engine (substitution S1 in DESIGN.md).

Public surface::

    from repro.autodiff import Tensor, no_grad, tape_node_count
    from repro.autodiff import functional as F
    from repro.autodiff import nn, optim

Performance design (see :mod:`repro.autodiff.tensor` for details): ops
skip closure construction entirely under :class:`no_grad` or on constant
inputs, scalar constants are interned, basic-slice gradients accumulate in
place, and the recurrent hot path is fused — a whole GRU layer (input
projection + packed time loop) is a single tape node
(:func:`repro.autodiff.functional.gru_sequence`). ``tape_node_count``
exposes a monotonic counter of recorded tape entries for regression tests
and benchmarks.
"""

from . import functional
from .tensor import Tensor, is_grad_enabled, no_grad, tape_node_count

__all__ = ["Tensor", "no_grad", "is_grad_enabled", "tape_node_count", "functional"]
