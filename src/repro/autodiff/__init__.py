"""Pure-NumPy reverse-mode autodiff engine (substitution S1 in DESIGN.md).

Public surface::

    from repro.autodiff import Tensor, no_grad, tape_node_count
    from repro.autodiff import set_default_dtype, get_default_dtype, default_dtype
    from repro.autodiff import functional as F
    from repro.autodiff import nn, optim, vjps

Backward pass: every op records ``(primitive name, parents, ctx)`` on the
tape; gradients are produced by the per-primitive VJP functions in the
registry (:mod:`repro.autodiff.vjps`). Registering a new primitive means
one ``defvjp``/``defvjp_fused`` call plus a gradcheck case — a meta-test
sweeps the registry so an op cannot land without gradient coverage.

Precision policy (:mod:`repro.autodiff.dtypes`): float64 is the reference
path — every equivalence contract and gradcheck runs there, unchanged —
while float32 is the training fast path (~2x GEMM throughput, half the
tape memory). ``set_default_dtype``/``default_dtype`` scope the ambient
default used for scalars, coercions and parameter init; arrays that are
already float32/float64 keep their dtype when wrapped.

Performance design (see :mod:`repro.autodiff.tensor` for details): ops
skip tape recording entirely under :class:`no_grad` or on constant
inputs, scalar constants are interned per dtype, basic-slice gradients
accumulate in place, and the recurrent hot path is fused — a whole GRU
layer (input projection + packed time loop) is a single tape node
(:func:`repro.autodiff.functional.gru_sequence`). ``tape_node_count``
exposes a monotonic counter of recorded tape entries for regression tests
and benchmarks.
"""

from . import functional, vjps
from .dtypes import (
    default_dtype,
    equivalence_atol,
    get_default_dtype,
    resolve_dtype,
    set_default_dtype,
)
from .tensor import Tensor, is_grad_enabled, no_grad, tape_node_count

__all__ = [
    "Tensor",
    "no_grad",
    "is_grad_enabled",
    "tape_node_count",
    "functional",
    "vjps",
    "default_dtype",
    "equivalence_atol",
    "get_default_dtype",
    "resolve_dtype",
    "set_default_dtype",
]
