"""Pure-NumPy reverse-mode autodiff engine (substitution S1 in DESIGN.md).

Public surface::

    from repro.autodiff import Tensor, no_grad
    from repro.autodiff import functional as F
    from repro.autodiff import nn, optim
"""

from . import functional
from .tensor import Tensor, is_grad_enabled, no_grad

__all__ = ["Tensor", "no_grad", "is_grad_enabled", "functional"]
