"""Optimizers and learning-rate schedules (Table I of the paper)."""

from .optimizers import SGD, Adadelta, Adam, Optimizer, StepDecay, clip_grad_norm

__all__ = ["Optimizer", "SGD", "Adam", "Adadelta", "StepDecay", "clip_grad_norm"]
