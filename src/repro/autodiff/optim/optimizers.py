"""Optimizers: SGD, Adam, Adadelta — the ones Table I of the paper uses.

The sentiment task trains with Adadelta at learning rate 1.0 with "decay by
half every 5 epochs"; the NER task with Adam at 1e-3. Both are provided,
plus plain SGD for tests, a step-decay schedule, and global-norm gradient
clipping.

Precision: optimizer state buffers (momentum/first/second moments,
Adadelta accumulators) are allocated with ``np.zeros_like`` on each
parameter, so they inherit the parameter's dtype — a float32 model keeps
its entire optimizer state in float32. The engine accumulates each
parameter's gradient in that parameter's own dtype, so all update
arithmetic stays in the parameter's precision end to end.
"""

from __future__ import annotations

import numpy as np

from ..tensor import Tensor

__all__ = ["Optimizer", "SGD", "Adam", "Adadelta", "StepDecay", "clip_grad_norm"]


class Optimizer:
    """Base class holding the parameter list and the learning rate."""

    def __init__(self, parameters: list[Tensor], lr: float) -> None:
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        self.parameters = list(parameters)
        if not self.parameters:
            raise ValueError("optimizer received no parameters")
        self.lr = lr

    def zero_grad(self) -> None:
        """Clear all parameter gradients."""
        for parameter in self.parameters:
            parameter.zero_grad()

    def step(self) -> None:
        raise NotImplementedError


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum and weight decay."""

    def __init__(
        self,
        parameters: list[Tensor],
        lr: float = 0.01,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(parameters, lr)
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        for parameter, velocity in zip(self.parameters, self._velocity):
            if parameter.grad is None:
                continue
            grad = parameter.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * parameter.data
            if self.momentum:
                velocity *= self.momentum
                velocity += grad
                grad = velocity
            parameter.data -= self.lr * grad


class Adam(Optimizer):
    """Adam (Kingma & Ba) with bias correction."""

    def __init__(
        self,
        parameters: list[Tensor],
        lr: float = 1e-3,
        betas: tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(parameters, lr)
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._m = [np.zeros_like(p.data) for p in self.parameters]
        self._v = [np.zeros_like(p.data) for p in self.parameters]
        self._t = 0

    def step(self) -> None:
        self._t += 1
        bias1 = 1.0 - self.beta1**self._t
        bias2 = 1.0 - self.beta2**self._t
        for parameter, m, v in zip(self.parameters, self._m, self._v):
            if parameter.grad is None:
                continue
            grad = parameter.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * parameter.data
            m *= self.beta1
            m += (1.0 - self.beta1) * grad
            v *= self.beta2
            v += (1.0 - self.beta2) * grad**2
            m_hat = m / bias1
            v_hat = v / bias2
            parameter.data -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)


class Adadelta(Optimizer):
    """Adadelta (Zeiler 2012): per-dimension adaptive steps without an
    explicit base learning rate; ``lr`` is the final scaling multiplier (1.0
    in the paper's sentiment configuration)."""

    def __init__(
        self,
        parameters: list[Tensor],
        lr: float = 1.0,
        rho: float = 0.95,
        eps: float = 1e-6,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(parameters, lr)
        self.rho = rho
        self.eps = eps
        self.weight_decay = weight_decay
        self._acc_grad = [np.zeros_like(p.data) for p in self.parameters]
        self._acc_delta = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        for parameter, acc_g, acc_d in zip(self.parameters, self._acc_grad, self._acc_delta):
            if parameter.grad is None:
                continue
            grad = parameter.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * parameter.data
            acc_g *= self.rho
            acc_g += (1.0 - self.rho) * grad**2
            delta = -np.sqrt(acc_d + self.eps) / np.sqrt(acc_g + self.eps) * grad
            acc_d *= self.rho
            acc_d += (1.0 - self.rho) * delta**2
            parameter.data += self.lr * delta


class StepDecay:
    """Multiply the optimizer's learning rate by ``factor`` every ``every`` epochs.

    Table I: "decay by half every 5 epochs" for the sentiment configuration.
    """

    def __init__(self, optimizer: Optimizer, every: int = 5, factor: float = 0.5) -> None:
        if every <= 0:
            raise ValueError(f"'every' must be positive, got {every}")
        self.optimizer = optimizer
        self.every = every
        self.factor = factor
        self._epoch = 0

    def step(self) -> float:
        """Advance one epoch; returns the (possibly updated) learning rate."""
        self._epoch += 1
        if self._epoch % self.every == 0:
            self.optimizer.lr *= self.factor
        return self.optimizer.lr


def clip_grad_norm(parameters: list[Tensor], max_norm: float) -> float:
    """Scale gradients so their global L2 norm is at most ``max_norm``.

    Returns the pre-clipping norm. Parameters without gradients are skipped.
    """
    if max_norm <= 0:
        raise ValueError(f"max_norm must be positive, got {max_norm}")
    total = 0.0
    for parameter in parameters:
        if parameter.grad is not None:
            total += float((parameter.grad**2).sum())
    norm = float(np.sqrt(total))
    if norm > max_norm and norm > 0:
        scale = max_norm / norm
        for parameter in parameters:
            if parameter.grad is not None:
                parameter.grad *= scale
    return norm
