"""Neural-network functional operations on :class:`~repro.autodiff.Tensor`.

These are the composite operations the paper's two architectures require:

* ``embedding`` — static/trainable word-vector lookup;
* ``conv1d_seq`` — 1-D convolution over the time axis of an embedded
  sequence (Kim-CNN filter windows; the tagger's width-5 convolution);
* ``max_over_time`` — max pooling over the (optionally masked) time axis;
* ``softmax`` / ``log_softmax`` — numerically stable, any axis;
* ``dropout`` — inverted dropout driven by an explicit RNG;
* ``concat`` / ``stack`` — graph-aware joins used by multi-window CNNs and
  the GRU time loop;
* soft-target cross-entropy losses — the Logic-LNCL pseudo-M-step trains
  against *distributions* ``qf(t)`` (paper Eq. 8/10), not hard labels, so the
  losses accept a full target distribution and optional per-instance weights
  (the ``num(J(i))`` weighting of Eq. 10).
"""

from __future__ import annotations

import numpy as np

from .tensor import Tensor

__all__ = [
    "embedding",
    "conv1d_seq",
    "max_over_time",
    "softmax",
    "log_softmax",
    "dropout",
    "concat",
    "stack",
    "cross_entropy_soft",
    "sequence_cross_entropy_soft",
]


def embedding(weight: Tensor, indices: np.ndarray) -> Tensor:
    """Look up rows of ``weight`` for integer ``indices``.

    Parameters
    ----------
    weight:
        ``(vocab, dim)`` embedding matrix.
    indices:
        Integer array of any shape; output shape is ``indices.shape + (dim,)``.
    """
    idx = np.asarray(indices)
    if not np.issubdtype(idx.dtype, np.integer):
        raise TypeError(f"embedding indices must be integers, got {idx.dtype}")
    out_data = weight.data[idx]

    def backward_fn(grad: np.ndarray) -> None:
        full = np.zeros_like(weight.data)
        np.add.at(full, idx.reshape(-1), grad.reshape(-1, weight.data.shape[1]))
        weight._accumulate(full)

    return Tensor._make(out_data, (weight,), backward_fn)


def _sliding_windows(data: np.ndarray, width: int) -> np.ndarray:
    """Return ``(B, T - width + 1, width * D)`` windows of ``(B, T, D)`` data."""
    batch, time, dim = data.shape
    out_time = time - width + 1
    windows = np.lib.stride_tricks.sliding_window_view(data, (width,), axis=1)
    # sliding_window_view yields (B, out_time, D, width); reorder to
    # (B, out_time, width, D) then flatten the window.
    windows = windows.transpose(0, 1, 3, 2).reshape(batch, out_time, width * dim)
    return np.ascontiguousarray(windows)


def conv1d_seq(x: Tensor, weight: Tensor, bias: Tensor | None, width: int, pad: str = "valid") -> Tensor:
    """1-D convolution over the time axis of a ``(B, T, D)`` sequence.

    Implemented as im2col + matmul, which is exact and keeps the backward
    pass a pair of matrix products plus a scatter-add.

    Parameters
    ----------
    x:
        Input of shape ``(B, T, D)``.
    weight:
        Filter bank of shape ``(width * D, F)``.
    bias:
        Optional bias of shape ``(F,)``.
    width:
        Filter window length (paper: 3/4/5 for Kim-CNN, 5 for the tagger).
    pad:
        ``"valid"`` (output length ``T - width + 1``) or ``"same"``
        (zero-padded so output length equals ``T``; used by the tagger so a
        label is produced for every token).
    """
    if x.data.ndim != 3:
        raise ValueError(f"conv1d_seq expects (B, T, D) input, got shape {x.shape}")
    if pad not in ("valid", "same"):
        raise ValueError(f"pad must be 'valid' or 'same', got {pad!r}")

    batch, time, dim = x.data.shape
    if weight.data.shape[0] != width * dim:
        raise ValueError(
            f"weight rows {weight.data.shape[0]} != width*dim = {width * dim}"
        )

    left = right = 0
    data = x.data
    if pad == "same":
        left = (width - 1) // 2
        right = width - 1 - left
        data = np.pad(data, ((0, 0), (left, right), (0, 0)))
    if data.shape[1] < width:
        raise ValueError(
            f"sequence length {time} shorter than filter width {width} with pad={pad!r}"
        )

    cols = _sliding_windows(data, width)          # (B, T_out, width*D)
    out_data = cols @ weight.data                 # (B, T_out, F)
    if bias is not None:
        out_data = out_data + bias.data

    parents = (x, weight) if bias is None else (x, weight, bias)

    def backward_fn(grad: np.ndarray) -> None:
        if bias is not None and bias._tracked:
            bias._accumulate(grad.sum(axis=(0, 1)))
        if weight._tracked:
            # (width*D, F) = sum_b cols_b^T @ grad_b
            wgrad = np.einsum("btk,btf->kf", cols, grad)
            weight._accumulate(wgrad)
        if x._tracked:
            gcols = grad @ weight.data.T          # (B, T_out, width*D)
            gcols = gcols.reshape(batch, -1, width, dim)
            xgrad = np.zeros_like(data)
            for offset in range(width):
                xgrad[:, offset : offset + gcols.shape[1], :] += gcols[:, :, offset, :]
            if pad == "same":
                xgrad = xgrad[:, left : left + time, :]
            x._accumulate(xgrad)

    return Tensor._make(out_data, parents, backward_fn)


def max_over_time(x: Tensor, mask: np.ndarray | None = None) -> Tensor:
    """Max-pool a ``(B, T, F)`` tensor over the time axis to ``(B, F)``.

    Parameters
    ----------
    mask:
        Optional boolean ``(B, T)`` validity mask; padded positions are
        excluded from the max. Every row must have at least one valid step.
    """
    data = x.data
    if mask is not None:
        m = np.asarray(mask, dtype=bool)
        if m.shape != data.shape[:2]:
            raise ValueError(f"mask shape {m.shape} does not match {data.shape[:2]}")
        if not m.any(axis=1).all():
            raise ValueError("max_over_time mask has a row with no valid positions")
        data = np.where(m[:, :, None], data, -np.inf)

    out_data = data.max(axis=1)
    argmax_mask = data == data.max(axis=1, keepdims=True)
    first = np.cumsum(argmax_mask, axis=1) == 1
    argmax_mask = argmax_mask & first

    def backward_fn(grad: np.ndarray) -> None:
        x._accumulate(argmax_mask * grad[:, None, :])

    return Tensor._make(out_data, (x,), backward_fn)


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable softmax along ``axis``."""
    shifted = x.data - x.data.max(axis=axis, keepdims=True)
    exp = np.exp(shifted)
    out_data = exp / exp.sum(axis=axis, keepdims=True)

    def backward_fn(grad: np.ndarray) -> None:
        dot = (grad * out_data).sum(axis=axis, keepdims=True)
        x._accumulate(out_data * (grad - dot))

    return Tensor._make(out_data, (x,), backward_fn)


def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable log-softmax along ``axis``."""
    shifted = x.data - x.data.max(axis=axis, keepdims=True)
    log_norm = np.log(np.exp(shifted).sum(axis=axis, keepdims=True))
    out_data = shifted - log_norm
    soft = np.exp(out_data)

    def backward_fn(grad: np.ndarray) -> None:
        x._accumulate(grad - soft * grad.sum(axis=axis, keepdims=True))

    return Tensor._make(out_data, (x,), backward_fn)


def dropout(x: Tensor, rate: float, rng: np.random.Generator, training: bool) -> Tensor:
    """Inverted dropout: scales kept activations by ``1/(1-rate)``.

    The RNG is passed explicitly so training runs are reproducible end to
    end (DESIGN.md scaling policy).
    """
    if not 0.0 <= rate < 1.0:
        raise ValueError(f"dropout rate must be in [0, 1), got {rate}")
    if not training or rate == 0.0:
        return x
    keep = 1.0 - rate
    mask = (rng.random(x.data.shape) < keep) / keep

    def backward_fn(grad: np.ndarray) -> None:
        x._accumulate(grad * mask)

    return Tensor._make(x.data * mask, (x,), backward_fn)


def concat(tensors: list[Tensor], axis: int = -1) -> Tensor:
    """Concatenate tensors along ``axis`` (graph-aware)."""
    if not tensors:
        raise ValueError("concat requires at least one tensor")
    out_data = np.concatenate([t.data for t in tensors], axis=axis)
    sizes = [t.data.shape[axis] for t in tensors]
    offsets = np.cumsum([0] + sizes)

    def backward_fn(grad: np.ndarray) -> None:
        for tensor, start, stop in zip(tensors, offsets[:-1], offsets[1:]):
            index = [slice(None)] * grad.ndim
            index[axis] = slice(start, stop)
            tensor._accumulate(grad[tuple(index)])

    return Tensor._make(out_data, tuple(tensors), backward_fn)


def stack(tensors: list[Tensor], axis: int = 0) -> Tensor:
    """Stack equal-shape tensors along a new ``axis`` (graph-aware)."""
    if not tensors:
        raise ValueError("stack requires at least one tensor")
    out_data = np.stack([t.data for t in tensors], axis=axis)

    def backward_fn(grad: np.ndarray) -> None:
        slices = np.moveaxis(grad, axis, 0)
        for tensor, piece in zip(tensors, slices):
            tensor._accumulate(piece)

    return Tensor._make(out_data, tuple(tensors), backward_fn)


def cross_entropy_soft(
    logits: Tensor,
    target: np.ndarray,
    weights: np.ndarray | None = None,
) -> Tensor:
    """Soft-target cross-entropy ``-(1/B) sum_i w_i * <q_i, log p_i>``.

    This is the pseudo-M-step loss of the paper: Eq. 8 with uniform weights,
    Eq. 10 when ``weights`` carries ``num(J(i))`` (the number of annotators
    per instance).

    Parameters
    ----------
    logits:
        ``(B, K)`` unnormalized scores.
    target:
        ``(B, K)`` target distribution (rows sum to one), a plain array —
        targets are constants produced by the pseudo-E-step.
    weights:
        Optional ``(B,)`` per-instance weights.
    """
    target = np.asarray(target, dtype=np.float64)
    if target.shape != logits.shape:
        raise ValueError(f"target shape {target.shape} != logits shape {logits.shape}")
    logp = log_softmax(logits, axis=-1)
    per_instance = -(Tensor(target) * logp).sum(axis=-1)
    if weights is not None:
        w = np.asarray(weights, dtype=np.float64)
        if w.shape != (logits.shape[0],):
            raise ValueError(f"weights shape {w.shape} != ({logits.shape[0]},)")
        per_instance = per_instance * Tensor(w)
    return per_instance.mean()


def sequence_cross_entropy_soft(
    logits: Tensor,
    target: np.ndarray,
    mask: np.ndarray,
    weights: np.ndarray | None = None,
) -> Tensor:
    """Soft-target cross-entropy for sequence tagging, averaged over valid tokens.

    Parameters
    ----------
    logits:
        ``(B, T, K)`` per-token scores.
    target:
        ``(B, T, K)`` per-token target distributions.
    mask:
        Boolean ``(B, T)``; padded tokens contribute nothing.
    weights:
        Optional ``(B, T)`` per-token weights (Eq. 10 for sequences: number
        of annotators who labeled the token).
    """
    target = np.asarray(target, dtype=np.float64)
    mask = np.asarray(mask, dtype=np.float64)
    if target.shape != logits.shape:
        raise ValueError(f"target shape {target.shape} != logits shape {logits.shape}")
    if mask.shape != logits.shape[:2]:
        raise ValueError(f"mask shape {mask.shape} != {logits.shape[:2]}")
    logp = log_softmax(logits, axis=-1)
    per_token = -(Tensor(target) * logp).sum(axis=-1)
    scale = mask
    if weights is not None:
        w = np.asarray(weights, dtype=np.float64)
        if w.shape != mask.shape:
            raise ValueError(f"weights shape {w.shape} != mask shape {mask.shape}")
        scale = mask * w
    total = (per_token * Tensor(scale)).sum()
    denom = max(float(mask.sum()), 1.0)
    return total * (1.0 / denom)
