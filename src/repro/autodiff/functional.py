"""Neural-network functional operations on :class:`~repro.autodiff.Tensor`.

These are the composite operations the paper's two architectures require:

* ``embedding`` — static/trainable word-vector lookup;
* ``conv1d_seq`` — 1-D convolution over the time axis of an embedded
  sequence (Kim-CNN filter windows; the tagger's width-5 convolution),
  with an auto-selected im2col / width-loop execution variant (the latter
  never materializes the ``(B, T_out, width·D)`` window buffer);
* ``max_over_time`` — max pooling over the (optionally masked) time axis;
* ``softmax`` / ``log_softmax`` — numerically stable, any axis;
* ``dropout`` — inverted dropout driven by an explicit RNG;
* ``concat`` / ``stack`` / ``unbind`` — graph-aware joins/splits used by
  multi-window CNNs and the GRU time loop;
* ``gru_sequence`` — the production GRU hot path: the entire layer
  (whole-sequence input projection + packed time loop) as a *single* tape
  node with a hand-derived BPTT rule (the fused sigmoid/tanh-with-grad
  path); ``gru_step`` is the same fused math for one timestep (a tested
  building block, not on the production path — with ``unbind`` it gives a
  2-nodes-per-step loop, vs ~12 for the per-gate cell);
* soft-target cross-entropy losses — the Logic-LNCL pseudo-M-step trains
  against *distributions* ``qf(t)`` (paper Eq. 8/10), not hard labels, so the
  losses accept a full target distribution and optional per-instance weights
  (the ``num(J(i))`` weighting of Eq. 10).

Each op here only computes the forward value and records a tape entry
naming its primitive plus the saved context; the matching gradient rules
live in the VJP registry (:mod:`repro.autodiff.vjps`). Ops compute in the
NumPy-promoted dtype of their inputs (scratch buffers included), so a
float32 model runs its whole forward *and* backward in float32; losses
coerce their constant targets/weights to the logits dtype.
"""

from __future__ import annotations

from types import SimpleNamespace

import numpy as np

from .tensor import Tensor, _tracking

__all__ = [
    "embedding",
    "conv1d_seq",
    "max_over_time",
    "softmax",
    "log_softmax",
    "dropout",
    "concat",
    "stack",
    "unbind",
    "gru_step",
    "gru_sequence",
    "cross_entropy_soft",
    "sequence_cross_entropy_soft",
]


def _stable_sigmoid(x: np.ndarray) -> np.ndarray:
    """Numerically stable logistic function on a plain array.

    ``sigmoid(x) = (1 + tanh(x/2)) / 2`` — one vectorized ``tanh`` call,
    no overflow for any input, no branch/boolean-mask traffic. Matches
    :meth:`Tensor.sigmoid` bit-for-bit (same formula).
    """
    return 0.5 * (1.0 + np.tanh(0.5 * x))


def _cast(array: np.ndarray, dtype: np.dtype) -> np.ndarray:
    """``array`` at ``dtype``, without a copy when it already matches."""
    return array if array.dtype == dtype else array.astype(dtype)


def embedding(weight: Tensor, indices: np.ndarray) -> Tensor:
    """Look up rows of ``weight`` for integer ``indices``.

    Parameters
    ----------
    weight:
        ``(vocab, dim)`` embedding matrix.
    indices:
        Integer array of any shape; output shape is ``indices.shape + (dim,)``.
    """
    idx = np.asarray(indices)
    if not np.issubdtype(idx.dtype, np.integer):
        raise TypeError(f"embedding indices must be integers, got {idx.dtype}")
    out_data = weight.data[idx]
    return Tensor._make(out_data, (weight,), "embedding", (weight.data, idx))


def _sliding_windows(data: np.ndarray, width: int) -> np.ndarray:
    """Return ``(B, T - width + 1, width * D)`` windows of ``(B, T, D)`` data."""
    batch, time, dim = data.shape
    out_time = time - width + 1
    windows = np.lib.stride_tricks.sliding_window_view(data, (width,), axis=1)
    # sliding_window_view yields (B, out_time, D, width); reorder to
    # (B, out_time, width, D) then flatten the window.
    windows = windows.transpose(0, 1, 3, 2).reshape(batch, out_time, width * dim)
    return np.ascontiguousarray(windows)


# Above this many window elements (B · T_out · width · D, i.e. 8 MB of
# float64) the materialized im2col buffer stops paying for its single big
# GEMM and the width-loop variant takes over.
IM2COL_ELEMENT_BUDGET = 1 << 20

CONV1D_VARIANTS = ("auto", "im2col", "width_loop")


def _select_conv1d_variant(batch: int, out_time: int, width: int, dim: int) -> str:
    """Resolve ``variant="auto"``: im2col for small problems (one GEMM, no
    per-offset dispatch), width-loop once the ``(B, T_out, width·D)`` window
    buffer would exceed :data:`IM2COL_ELEMENT_BUDGET` elements."""
    if width <= 1:
        return "im2col"  # windows are the input itself; nothing to save
    if batch * out_time * width * dim > IM2COL_ELEMENT_BUDGET:
        return "width_loop"
    return "im2col"


def conv1d_seq(
    x: Tensor,
    weight: Tensor,
    bias: Tensor | None,
    width: int,
    pad: str = "valid",
    variant: str = "auto",
) -> Tensor:
    """1-D convolution over the time axis of a ``(B, T, D)`` sequence.

    Two execution variants compute the same convolution (and expose the
    same single tape node with an unchanged backward contract):

    * ``"im2col"`` — materialize ``(B, T_out, width·D)`` windows, one big
      matmul. Fastest at small sizes, but the window buffer is ``width``×
      the input (~1500× the embedding dim at the tagger's width 5, D 300).
    * ``"width_loop"`` — accumulate ``width`` shifted ``(B, T_out, D) @
      (D, F)`` matmuls in place. Same O(width·B·T_out·D·F) flops, but peak
      extra memory is one input-sized block instead of the ``width``×
      window buffer — forward *and* backward never materialize
      ``(B, T_out, width·D)``.
    * ``"auto"`` (default) — :func:`_select_conv1d_variant` picks im2col
      below :data:`IM2COL_ELEMENT_BUDGET` window elements, width-loop
      above.

    The two variants agree to float64 round-off (~1e-13 at paper scale) but
    not bit-for-bit: splitting the shared ``width·D`` reduction into
    per-offset GEMMs changes BLAS's summation order. Equivalence is pinned
    by ``tests/autodiff/test_conv1d_paths.py``.

    Parameters
    ----------
    x:
        Input of shape ``(B, T, D)``.
    weight:
        Filter bank of shape ``(width * D, F)``.
    bias:
        Optional bias of shape ``(F,)``.
    width:
        Filter window length (paper: 3/4/5 for Kim-CNN, 5 for the tagger).
    pad:
        ``"valid"`` (output length ``T - width + 1``) or ``"same"``
        (zero-padded so output length equals ``T``; used by the tagger so a
        label is produced for every token).
    variant:
        ``"auto"``, ``"im2col"``, or ``"width_loop"``.
    """
    if x.data.ndim != 3:
        raise ValueError(f"conv1d_seq expects (B, T, D) input, got shape {x.shape}")
    if pad not in ("valid", "same"):
        raise ValueError(f"pad must be 'valid' or 'same', got {pad!r}")
    if variant not in CONV1D_VARIANTS:
        raise ValueError(f"variant must be one of {CONV1D_VARIANTS}, got {variant!r}")

    batch, time, dim = x.data.shape
    if weight.data.shape[0] != width * dim:
        raise ValueError(
            f"weight rows {weight.data.shape[0]} != width*dim = {width * dim}"
        )

    left = right = 0
    data = x.data
    if pad == "same":
        left = (width - 1) // 2
        right = width - 1 - left
        data = np.pad(data, ((0, 0), (left, right), (0, 0)))
    if data.shape[1] < width:
        raise ValueError(
            f"sequence length {time} shorter than filter width {width} with pad={pad!r}"
        )
    out_time = data.shape[1] - width + 1
    if variant == "auto":
        variant = _select_conv1d_variant(batch, out_time, width, dim)

    if variant == "im2col":
        cols = _sliding_windows(data, width)      # (B, T_out, width*D)
        out_data = cols @ weight.data             # (B, T_out, F)
        if bias is not None:
            out_data = out_data + bias.data
    else:
        feats = weight.data.shape[1]
        if bias is None:
            out_dtype = np.result_type(data, weight.data)
        else:
            out_dtype = np.result_type(data, weight.data, bias.data)
        out_data = np.zeros((batch, out_time, feats), dtype=out_dtype)
        for offset in range(width):
            block = weight.data[offset * dim : (offset + 1) * dim]
            out_data += data[:, offset : offset + out_time, :] @ block
        if bias is not None:
            out_data += bias.data

    parents = (x, weight) if bias is None else (x, weight, bias)
    if not _tracking(*parents):
        return Tensor(out_data)
    same = pad == "same"
    if variant == "im2col":
        ctx = (cols, weight.data, data.shape, width, dim, same, left, time)
        return Tensor._link(out_data, parents, "conv1d_im2col", ctx)
    ctx = (data, weight.data, width, dim, out_time, same, left, time)
    return Tensor._link(out_data, parents, "conv1d_width_loop", ctx)


def max_over_time(x: Tensor, mask: np.ndarray | None = None) -> Tensor:
    """Max-pool a ``(B, T, F)`` tensor over the time axis to ``(B, F)``.

    Parameters
    ----------
    mask:
        Optional boolean ``(B, T)`` validity mask; padded positions are
        excluded from the max. Every row must have at least one valid step.
    """
    data = x.data
    if mask is not None:
        m = np.asarray(mask, dtype=bool)
        if m.shape != data.shape[:2]:
            raise ValueError(f"mask shape {m.shape} does not match {data.shape[:2]}")
        if not m.any(axis=1).all():
            raise ValueError("max_over_time mask has a row with no valid positions")
        data = np.where(m[:, :, None], data, -np.inf)

    out_data = data.max(axis=1)
    if not _tracking(x):
        return Tensor(out_data)
    argmax_mask = data == data.max(axis=1, keepdims=True)
    first = np.cumsum(argmax_mask, axis=1) == 1
    argmax_mask = argmax_mask & first
    return Tensor._link(out_data, (x,), "max_over_time", (argmax_mask,))


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable softmax along ``axis``."""
    shifted = x.data - x.data.max(axis=axis, keepdims=True)
    exp = np.exp(shifted)
    out_data = exp / exp.sum(axis=axis, keepdims=True)
    return Tensor._make(out_data, (x,), "softmax", (axis,))


def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable log-softmax along ``axis``."""
    shifted = x.data - x.data.max(axis=axis, keepdims=True)
    log_norm = np.log(np.exp(shifted).sum(axis=axis, keepdims=True))
    out_data = shifted - log_norm
    if not _tracking(x):
        return Tensor(out_data)
    soft = np.exp(out_data)
    return Tensor._link(out_data, (x,), "log_softmax", (soft, axis))


def dropout(x: Tensor, rate: float, rng: np.random.Generator, training: bool) -> Tensor:
    """Inverted dropout: scales kept activations by ``1/(1-rate)``.

    The RNG is passed explicitly so training runs are reproducible end to
    end (DESIGN.md scaling policy). The keep mask is built in the input's
    dtype so a float32 activation stream stays float32.
    """
    if not 0.0 <= rate < 1.0:
        raise ValueError(f"dropout rate must be in [0, 1), got {rate}")
    if not training or rate == 0.0:
        return x
    keep = 1.0 - rate
    mask = (rng.random(x.data.shape) < keep).astype(x.data.dtype)
    mask /= keep
    return Tensor._make(x.data * mask, (x,), "dropout", (mask,))


def concat(tensors: list[Tensor], axis: int = -1) -> Tensor:
    """Concatenate tensors along ``axis`` (graph-aware)."""
    if not tensors:
        raise ValueError("concat requires at least one tensor")
    out_data = np.concatenate([t.data for t in tensors], axis=axis)
    sizes = [t.data.shape[axis] for t in tensors]
    offsets = np.cumsum([0] + sizes)
    return Tensor._make(out_data, tuple(tensors), "concat", (axis, offsets))


def stack(tensors: list[Tensor], axis: int = 0) -> Tensor:
    """Stack equal-shape tensors along a new ``axis`` (graph-aware)."""
    if not tensors:
        raise ValueError("stack requires at least one tensor")
    out_data = np.stack([t.data for t in tensors], axis=axis)
    return Tensor._make(out_data, tuple(tensors), "stack", (axis,))


def unbind(x: Tensor, axis: int = 0) -> list[Tensor]:
    """Split ``x`` into views along ``axis`` (the axis is removed).

    Inverse of :func:`stack`. Each piece's backward adds its gradient in
    place into the parent's buffer (:meth:`Tensor._accumulate_at`), so
    consuming all ``T`` slices of a sequence costs O(T) total backward
    memory traffic rather than O(T^2). Used by the GRU time loop to read
    the precomputed per-step input projections.
    """
    axis = axis % x.data.ndim
    length = x.data.shape[axis]
    tracked = _tracking(x)
    pieces: list[Tensor] = []
    for position in range(length):
        index = (slice(None),) * axis + (position,)
        piece_data = np.ascontiguousarray(x.data[index])
        if not tracked:
            pieces.append(Tensor(piece_data))
            continue
        pieces.append(Tensor._link(piece_data, (x,), "unbind", (index,)))
    return pieces


def gru_step(gx: Tensor, h: Tensor, w_h: Tensor, mask: np.ndarray | None = None) -> Tensor:
    """One fused GRU timestep (PyTorch gate convention).

    Computes, as a single tape node::

        gh = h @ w_h                      # (B, 3H), columns [r | z | n]
        r  = sigmoid(gx_r + gh_r)
        z  = sigmoid(gx_z + gh_z)
        n  = tanh(gx_n + r * gh_n)
        h' = (1 - z) * n + z * h
        out = m * h' + (1 - m) * h        # when a padding mask is given

    Parameters
    ----------
    gx:
        ``(B, 3H)`` precomputed input projection ``x_t @ w_x + b`` for this
        timestep (hoisted out of the time loop as one big matmul).
    h:
        ``(B, H)`` previous hidden state.
    w_h:
        ``(H, 3H)`` fused recurrent weight matrix.
    mask:
        Optional ``(B,)`` float validity mask; padded rows (0) copy the
        previous state forward, exactly as the pre-fusion time loop did.

    The registered VJP re-derives all six gate gradients analytically from
    the saved activations (the fused sigmoid/tanh-with-grad path), so no
    intermediate tensors ever land on the tape.
    """
    hidden = h.data.shape[1]
    if gx.data.shape != (h.data.shape[0], 3 * hidden):
        raise ValueError(f"gx shape {gx.data.shape} != ({h.data.shape[0]}, {3 * hidden})")
    if w_h.data.shape != (hidden, 3 * hidden):
        raise ValueError(f"w_h shape {w_h.data.shape} != ({hidden}, {3 * hidden})")

    gh = h.data @ w_h.data
    r = _stable_sigmoid(gx.data[:, :hidden] + gh[:, :hidden])
    z = _stable_sigmoid(gx.data[:, hidden : 2 * hidden] + gh[:, hidden : 2 * hidden])
    gh_n = gh[:, 2 * hidden :]
    n = np.tanh(gx.data[:, 2 * hidden :] + r * gh_n)
    h_new = (1.0 - z) * n + z * h.data

    m = None
    if mask is not None:
        m = np.asarray(mask, dtype=h_new.dtype).reshape(-1, 1)
        out_data = h_new * m + h.data * (1.0 - m)
    else:
        out_data = h_new

    if not _tracking(gx, h, w_h):
        return Tensor(out_data)
    ctx = (r, z, n, gh_n, h.data, w_h.data, m)
    return Tensor._link(out_data, (gx, h, w_h), "gru_step", ctx)


def _prefix_lengths(mask: np.ndarray) -> np.ndarray | None:
    """Return per-row valid lengths if ``mask`` is a prefix mask, else None.

    A prefix mask (ones then zeros in every row) is what padding to a
    common length produces; it allows the packed-sequence fast path.
    Fractional (soft) mask values disqualify the mask — they need the
    general m-weighted carry, not a run/freeze decision.
    """
    raw = np.asarray(mask)
    if raw.dtype != bool and not (((raw == 0) | (raw == 1)).all()):
        return None
    m = raw.astype(bool)
    lengths = m.sum(axis=1)
    positions = np.arange(m.shape[1])
    if np.array_equal(m, positions[None, :] < lengths[:, None]):
        return lengths.astype(np.int64)
    return None


def gru_sequence(
    gx: Tensor,
    h0: np.ndarray,
    w_h: Tensor,
    mask: np.ndarray | None = None,
    *,
    w_x: Tensor | None = None,
    bias: Tensor | None = None,
) -> Tensor:
    """Run a whole GRU layer (projection + time loop) as a *single* tape node.

    The per-step math of :func:`gru_step` (same gate equations, same
    padding-mask carry), but with the entire ``(B, T)`` unroll fused:

    * when ``w_x``/``bias`` are given, the input projection
      ``gx = x @ w_x + bias`` for the *whole sequence* runs inside the op
      as one flattened ``(B·T, D) @ (D, 3H)`` GEMM (and its backward as
      two GEMMs plus a sum), so the full GRU layer is one tape entry;
    * the forward loop writes gate activations into preallocated
      ``(T, B, *)`` buffers with in-place NumPy ops;
    * padding masks that are prefix masks (the output of padding ragged
      sentences to a common length) trigger the *packed-sequence* path:
      rows are sorted by length and each step runs on only the still-active
      prefix of the batch, so padded positions cost a row copy instead of
      full gate math — the classic cuDNN/pack_padded_sequence trick.
      Results are identical because a masked step is exactly a state copy;
    * the registered BPTT rule precomputes all time-independent derivative
      factors (``1 - n^2``, ``z(1-z)``, ``r(1-r)``, ...) as vectorized
      whole-sequence arrays and reduces the recurrent weight gradient to
      flattened-unroll GEMMs.

    The whole op — projection, loop buffers, saved activations, backward —
    runs in the NumPy-promoted dtype of its tensor inputs, so a float32
    GRU never touches float64 scratch memory.

    The tape cost of a ``T``-step unroll drops from ~12·T nodes to 1.

    Parameters
    ----------
    gx:
        ``(B, T, 3H)`` precomputed input projections ``x @ w_x + b`` (gate
        order ``[r | z | n]``) — or, when ``w_x`` is given, the raw
        ``(B, T, D)`` input sequence.
    h0:
        ``(B, H)`` initial hidden state, a constant array (no gradient
        flows to it; the tagger always starts at zeros).
    w_h:
        ``(H, 3H)`` fused recurrent weights.
    mask:
        Optional ``(B, T)`` validity mask; padded steps copy the previous
        state forward exactly, keeping outputs invariant to padding length.
    w_x, bias:
        Optional fused input projection ``(D, 3H)`` weights and ``(3H,)``
        bias, applied to ``gx`` inside the op (both or neither).
    """
    if (w_x is None) != (bias is None):
        raise ValueError("w_x and bias must be given together")
    x = gx
    in_dim = 0
    if w_x is not None:
        batch, time, in_dim = x.data.shape
        if w_x.data.shape[0] != in_dim:
            raise ValueError(f"w_x rows {w_x.data.shape[0]} != input dim {in_dim}")
        triple = w_x.data.shape[1]
    else:
        batch, time, triple = x.data.shape
    hidden = triple // 3
    if triple != 3 * hidden:
        raise ValueError(f"gx last axis {triple} is not divisible by 3")
    if h0.shape != (batch, hidden):
        raise ValueError(f"h0 shape {h0.shape} != ({batch}, {hidden})")
    if w_h.data.shape != (hidden, 3 * hidden):
        raise ValueError(f"w_h shape {w_h.data.shape} != ({hidden}, {3 * hidden})")

    two = 2 * hidden

    # Compute dtype: the NumPy promotion of every tensor input. All loop
    # buffers, saved activations and the backward scratch use it, and any
    # off-dtype operand is cast once up front (a no-op on uniform graphs).
    if w_x is None:
        compute_dtype = np.result_type(x.data, w_h.data)
    else:
        compute_dtype = np.result_type(x.data, w_h.data, w_x.data, bias.data)
    w_h_data = _cast(w_h.data, compute_dtype)
    h0 = _cast(np.asarray(h0), compute_dtype)

    # Packed-sequence fast path: sort rows by length (descending) so each
    # timestep operates on a contiguous "active" batch prefix.
    order = inverse_order = None
    active: np.ndarray | None = None
    mask_t_major = None
    valid_flat: np.ndarray | None = None  # (B*T,) valid positions, input order
    if mask is not None:
        lengths = _prefix_lengths(mask)
        if lengths is not None:
            order = np.argsort(-lengths, kind="stable")
            inverse_order = np.argsort(order, kind="stable")
            sorted_lengths = lengths[order]
            # active[t] = number of rows still running at step t.
            active = (sorted_lengths[None, :] > np.arange(time)[:, None]).sum(axis=1)
            if lengths.sum() < 0.9 * batch * time:
                # Sparse enough that compacting the flattened projection /
                # weight-gradient GEMMs to valid rows pays for the gathers.
                valid_flat = np.asarray(mask, dtype=bool).reshape(-1)
        else:  # general mask: fall back to the m-weighted carry
            mask_t_major = np.ascontiguousarray(
                np.asarray(mask, dtype=compute_dtype).T
            )

    x_flat = x_compact = None
    w_x_data = bias_data = None
    if w_x is not None:
        w_x_data = _cast(w_x.data, compute_dtype)
        bias_data = _cast(bias.data, compute_dtype)
        x_flat = _cast(x.data, compute_dtype).reshape(batch * time, in_dim)
        if valid_flat is not None:
            # Project only real tokens; padded gx rows are never read by
            # the packed loop (their states are frozen copies).
            x_compact = x_flat[valid_flat]
            projected = x_compact @ w_x_data
            projected += bias_data
            gx_flat = np.zeros((batch * time, triple), dtype=compute_dtype)
            gx_flat[valid_flat] = projected
        else:
            gx_flat = x_flat @ w_x_data
            gx_flat += bias_data
        gx_data = gx_flat.reshape(batch, time, triple)
    else:
        gx_data = _cast(x.data, compute_dtype)

    if order is not None:
        # Fancy-index the transposed view: one pass yields a contiguous
        # (T, B, 3H) array in sorted row order.
        gx_t_major = np.swapaxes(gx_data, 0, 1)[:, order]
        h_start = h0[order]
    else:
        gx_t_major = np.ascontiguousarray(np.swapaxes(gx_data, 0, 1))
        h_start = h0

    # Saved activations for backward; also serve as forward work buffers.
    # zeros (not empty): rows beyond the active prefix are never written
    # but do flow through the backward whole-array precomputes, and
    # uninitialized garbage there could overflow.
    gates_rz = np.zeros((time, batch, two), dtype=compute_dtype)       # sig(r), sig(z)
    candidate = np.zeros((time, batch, hidden), dtype=compute_dtype)   # tanh cand. n
    recur = np.zeros((time, batch, 3 * hidden), dtype=compute_dtype)   # h @ w_h
    states = np.empty((time, batch, hidden), dtype=compute_dtype)      # h_t (sorted)
    scratch = np.empty((batch, hidden), dtype=compute_dtype)

    h = h_start
    for t in range(time):
        a = batch if active is None else int(active[t])
        out_t = states[t]
        if a < batch:
            out_t[a:] = h[a:]  # finished rows: frozen state, no gate math
        if a == 0:
            h = out_t
            continue
        a_t = gx_t_major[t]
        gh = recur[t]
        np.matmul(h[:a], w_h_data, out=gh[:a])
        rz = gates_rz[t, :a]
        np.add(a_t[:a, :two], gh[:a, :two], out=rz)
        # In-place stable sigmoid: (1 + tanh(x/2)) / 2.
        rz *= 0.5
        np.tanh(rz, out=rz)
        rz += 1.0
        rz *= 0.5
        r = rz[:, :hidden]
        z = rz[:, hidden:]
        n = candidate[t, :a]
        np.multiply(r, gh[:a, two:], out=n)
        n += a_t[:a, two:]
        np.tanh(n, out=n)
        # h' = n + z * (h - n)  ==  (1 - z) * n + z * h
        np.subtract(h[:a], n, out=out_t[:a])
        out_t[:a] *= z
        out_t[:a] += n
        if mask_t_major is not None:
            m = mask_t_major[t][:, None]
            # out = h + m * (h' - h): padded rows (m = 0) copy h exactly.
            np.subtract(out_t, h, out=scratch)
            scratch *= m
            np.add(h, scratch, out=out_t)
        h = out_t

    if inverse_order is not None:
        out_data = np.swapaxes(states, 0, 1)[inverse_order]    # one-pass unsort
    else:
        out_data = np.ascontiguousarray(np.swapaxes(states, 0, 1))  # (B, T, H)

    parents: tuple[Tensor, ...] = (x, w_h) if w_x is None else (x, w_h, w_x, bias)
    if not _tracking(*parents):
        return Tensor(out_data)

    saved = SimpleNamespace(
        order=order,
        inverse_order=inverse_order,
        active=active,
        mask_t_major=mask_t_major,
        valid_flat=valid_flat,
        h_start=h_start,
        states=states,
        gates_rz=gates_rz,
        candidate=candidate,
        recur=recur,
        x_flat=x_flat,
        x_compact=x_compact,
        w_h=w_h_data,
        w_x=w_x_data,
        bias=bias_data,
        batch=batch,
        time=time,
        hidden=hidden,
        in_dim=in_dim,
    )
    return Tensor._link(out_data, parents, "gru_sequence", (saved,))


def cross_entropy_soft(
    logits: Tensor,
    target: np.ndarray,
    weights: np.ndarray | None = None,
) -> Tensor:
    """Soft-target cross-entropy ``-(1/B) sum_i w_i * <q_i, log p_i>``.

    This is the pseudo-M-step loss of the paper: Eq. 8 with uniform weights,
    Eq. 10 when ``weights`` carries ``num(J(i))`` (the number of annotators
    per instance). Targets and weights are constants from the pseudo-E-step
    and are coerced to the logits dtype (losses compute in the model's
    precision).
    """
    target = np.asarray(target, dtype=logits.data.dtype)
    if target.shape != logits.shape:
        raise ValueError(f"target shape {target.shape} != logits shape {logits.shape}")
    logp = log_softmax(logits, axis=-1)
    per_instance = -(Tensor(target) * logp).sum(axis=-1)
    if weights is not None:
        w = np.asarray(weights, dtype=logits.data.dtype)
        if w.shape != (logits.shape[0],):
            raise ValueError(f"weights shape {w.shape} != ({logits.shape[0]},)")
        per_instance = per_instance * Tensor(w)
    return per_instance.mean()


def sequence_cross_entropy_soft(
    logits: Tensor,
    target: np.ndarray,
    mask: np.ndarray,
    weights: np.ndarray | None = None,
) -> Tensor:
    """Soft-target cross-entropy for sequence tagging, averaged over valid tokens.

    Parameters
    ----------
    logits:
        ``(B, T, K)`` per-token scores.
    target:
        ``(B, T, K)`` per-token target distributions.
    mask:
        Boolean ``(B, T)``; padded tokens contribute nothing.
    weights:
        Optional ``(B, T)`` per-token weights (Eq. 10 for sequences: number
        of annotators who labeled the token).
    """
    target = np.asarray(target, dtype=logits.data.dtype)
    mask = np.asarray(mask, dtype=logits.data.dtype)
    if target.shape != logits.shape:
        raise ValueError(f"target shape {target.shape} != logits shape {logits.shape}")
    if mask.shape != logits.shape[:2]:
        raise ValueError(f"mask shape {mask.shape} != {logits.shape[:2]}")
    logp = log_softmax(logits, axis=-1)
    per_token = -(Tensor(target) * logp).sum(axis=-1)
    scale = mask
    if weights is not None:
        w = np.asarray(weights, dtype=logits.data.dtype)
        if w.shape != mask.shape:
            raise ValueError(f"weights shape {w.shape} != mask shape {mask.shape}")
        scale = mask * w
    total = (per_token * Tensor(scale)).sum()
    denom = max(float(mask.sum()), 1.0)
    return total * (1.0 / denom)
