"""Neural-network functional operations on :class:`~repro.autodiff.Tensor`.

These are the composite operations the paper's two architectures require:

* ``embedding`` — static/trainable word-vector lookup;
* ``conv1d_seq`` — 1-D convolution over the time axis of an embedded
  sequence (Kim-CNN filter windows; the tagger's width-5 convolution),
  with an auto-selected im2col / width-loop execution variant (the latter
  never materializes the ``(B, T_out, width·D)`` window buffer);
* ``max_over_time`` — max pooling over the (optionally masked) time axis;
* ``softmax`` / ``log_softmax`` — numerically stable, any axis;
* ``dropout`` — inverted dropout driven by an explicit RNG;
* ``concat`` / ``stack`` / ``unbind`` — graph-aware joins/splits used by
  multi-window CNNs and the GRU time loop;
* ``gru_sequence`` — the production GRU hot path: the entire layer
  (whole-sequence input projection + packed time loop) as a *single* tape
  node with a hand-derived BPTT closure (the fused sigmoid/tanh-with-grad
  path); ``gru_step`` is the same fused math for one timestep (a tested
  building block, not on the production path — with ``unbind`` it gives a
  2-nodes-per-step loop, vs ~12 for the per-gate cell);
* soft-target cross-entropy losses — the Logic-LNCL pseudo-M-step trains
  against *distributions* ``qf(t)`` (paper Eq. 8/10), not hard labels, so the
  losses accept a full target distribution and optional per-instance weights
  (the ``num(J(i))`` weighting of Eq. 10).
"""

from __future__ import annotations

import numpy as np

from .tensor import Tensor, _tracking

__all__ = [
    "embedding",
    "conv1d_seq",
    "max_over_time",
    "softmax",
    "log_softmax",
    "dropout",
    "concat",
    "stack",
    "unbind",
    "gru_step",
    "gru_sequence",
    "cross_entropy_soft",
    "sequence_cross_entropy_soft",
]


def _stable_sigmoid(x: np.ndarray) -> np.ndarray:
    """Numerically stable logistic function on a plain array.

    ``sigmoid(x) = (1 + tanh(x/2)) / 2`` — one vectorized ``tanh`` call,
    no overflow for any input, no branch/boolean-mask traffic. Matches
    :meth:`Tensor.sigmoid` bit-for-bit (same formula).
    """
    return 0.5 * (1.0 + np.tanh(0.5 * x))


def embedding(weight: Tensor, indices: np.ndarray) -> Tensor:
    """Look up rows of ``weight`` for integer ``indices``.

    Parameters
    ----------
    weight:
        ``(vocab, dim)`` embedding matrix.
    indices:
        Integer array of any shape; output shape is ``indices.shape + (dim,)``.
    """
    idx = np.asarray(indices)
    if not np.issubdtype(idx.dtype, np.integer):
        raise TypeError(f"embedding indices must be integers, got {idx.dtype}")
    out_data = weight.data[idx]

    def backward_fn(grad: np.ndarray) -> None:
        full = np.zeros_like(weight.data)
        np.add.at(full, idx.reshape(-1), grad.reshape(-1, weight.data.shape[1]))
        weight._accumulate(full)

    return Tensor._make(out_data, (weight,), backward_fn)


def _sliding_windows(data: np.ndarray, width: int) -> np.ndarray:
    """Return ``(B, T - width + 1, width * D)`` windows of ``(B, T, D)`` data."""
    batch, time, dim = data.shape
    out_time = time - width + 1
    windows = np.lib.stride_tricks.sliding_window_view(data, (width,), axis=1)
    # sliding_window_view yields (B, out_time, D, width); reorder to
    # (B, out_time, width, D) then flatten the window.
    windows = windows.transpose(0, 1, 3, 2).reshape(batch, out_time, width * dim)
    return np.ascontiguousarray(windows)


# Above this many window elements (B · T_out · width · D, i.e. 8 MB of
# float64) the materialized im2col buffer stops paying for its single big
# GEMM and the width-loop variant takes over.
IM2COL_ELEMENT_BUDGET = 1 << 20

CONV1D_VARIANTS = ("auto", "im2col", "width_loop")


def _select_conv1d_variant(batch: int, out_time: int, width: int, dim: int) -> str:
    """Resolve ``variant="auto"``: im2col for small problems (one GEMM, no
    per-offset dispatch), width-loop once the ``(B, T_out, width·D)`` window
    buffer would exceed :data:`IM2COL_ELEMENT_BUDGET` elements."""
    if width <= 1:
        return "im2col"  # windows are the input itself; nothing to save
    if batch * out_time * width * dim > IM2COL_ELEMENT_BUDGET:
        return "width_loop"
    return "im2col"


def conv1d_seq(
    x: Tensor,
    weight: Tensor,
    bias: Tensor | None,
    width: int,
    pad: str = "valid",
    variant: str = "auto",
) -> Tensor:
    """1-D convolution over the time axis of a ``(B, T, D)`` sequence.

    Two execution variants compute the same convolution (and expose the
    same single tape node with an unchanged backward contract):

    * ``"im2col"`` — materialize ``(B, T_out, width·D)`` windows, one big
      matmul. Fastest at small sizes, but the window buffer is ``width``×
      the input (~1500× the embedding dim at the tagger's width 5, D 300).
    * ``"width_loop"`` — accumulate ``width`` shifted ``(B, T_out, D) @
      (D, F)`` matmuls in place. Same O(width·B·T_out·D·F) flops, but peak
      extra memory is one input-sized block instead of the ``width``×
      window buffer — forward *and* backward never materialize
      ``(B, T_out, width·D)``.
    * ``"auto"`` (default) — :func:`_select_conv1d_variant` picks im2col
      below :data:`IM2COL_ELEMENT_BUDGET` window elements, width-loop
      above.

    The two variants agree to float64 round-off (~1e-13 at paper scale) but
    not bit-for-bit: splitting the shared ``width·D`` reduction into
    per-offset GEMMs changes BLAS's summation order. Equivalence is pinned
    by ``tests/autodiff/test_conv1d_paths.py``.

    Parameters
    ----------
    x:
        Input of shape ``(B, T, D)``.
    weight:
        Filter bank of shape ``(width * D, F)``.
    bias:
        Optional bias of shape ``(F,)``.
    width:
        Filter window length (paper: 3/4/5 for Kim-CNN, 5 for the tagger).
    pad:
        ``"valid"`` (output length ``T - width + 1``) or ``"same"``
        (zero-padded so output length equals ``T``; used by the tagger so a
        label is produced for every token).
    variant:
        ``"auto"``, ``"im2col"``, or ``"width_loop"``.
    """
    if x.data.ndim != 3:
        raise ValueError(f"conv1d_seq expects (B, T, D) input, got shape {x.shape}")
    if pad not in ("valid", "same"):
        raise ValueError(f"pad must be 'valid' or 'same', got {pad!r}")
    if variant not in CONV1D_VARIANTS:
        raise ValueError(f"variant must be one of {CONV1D_VARIANTS}, got {variant!r}")

    batch, time, dim = x.data.shape
    if weight.data.shape[0] != width * dim:
        raise ValueError(
            f"weight rows {weight.data.shape[0]} != width*dim = {width * dim}"
        )

    left = right = 0
    data = x.data
    if pad == "same":
        left = (width - 1) // 2
        right = width - 1 - left
        data = np.pad(data, ((0, 0), (left, right), (0, 0)))
    if data.shape[1] < width:
        raise ValueError(
            f"sequence length {time} shorter than filter width {width} with pad={pad!r}"
        )
    out_time = data.shape[1] - width + 1
    if variant == "auto":
        variant = _select_conv1d_variant(batch, out_time, width, dim)

    if variant == "im2col":
        cols = _sliding_windows(data, width)      # (B, T_out, width*D)
        out_data = cols @ weight.data             # (B, T_out, F)
        if bias is not None:
            out_data = out_data + bias.data
    else:
        feats = weight.data.shape[1]
        out_data = np.zeros((batch, out_time, feats))
        for offset in range(width):
            block = weight.data[offset * dim : (offset + 1) * dim]
            out_data += data[:, offset : offset + out_time, :] @ block
        if bias is not None:
            out_data += bias.data

    parents = (x, weight) if bias is None else (x, weight, bias)

    def backward_im2col(grad: np.ndarray) -> None:
        if bias is not None and bias._tracked:
            bias._accumulate(grad.sum(axis=(0, 1)))
        if weight._tracked:
            # (width*D, F) = sum_b cols_b^T @ grad_b
            wgrad = np.einsum("btk,btf->kf", cols, grad)
            weight._accumulate(wgrad)
        if x._tracked:
            gcols = grad @ weight.data.T          # (B, T_out, width*D)
            gcols = gcols.reshape(batch, -1, width, dim)
            xgrad = np.zeros_like(data)
            for offset in range(width):
                xgrad[:, offset : offset + gcols.shape[1], :] += gcols[:, :, offset, :]
            if pad == "same":
                xgrad = xgrad[:, left : left + time, :]
            x._accumulate(xgrad)

    def backward_width_loop(grad: np.ndarray) -> None:
        if bias is not None and bias._tracked:
            bias._accumulate(grad.sum(axis=(0, 1)))
        if weight._tracked:
            # Per-offset (D, F) GEMMs into the fused weight gradient; peak
            # extra memory is one contiguous input-sized block, never the
            # (B, T_out, width*D) window expansion.
            wgrad = np.empty_like(weight.data)
            grad_flat = grad.reshape(batch * out_time, -1)
            for offset in range(width):
                block = np.ascontiguousarray(
                    data[:, offset : offset + out_time, :]
                ).reshape(batch * out_time, dim)
                np.matmul(block.T, grad_flat, out=wgrad[offset * dim : (offset + 1) * dim])
            weight._accumulate(wgrad)
        if x._tracked:
            xgrad = np.zeros_like(data)
            for offset in range(width):
                block = weight.data[offset * dim : (offset + 1) * dim]
                xgrad[:, offset : offset + out_time, :] += grad @ block.T
            if pad == "same":
                xgrad = xgrad[:, left : left + time, :]
            x._accumulate(xgrad)

    backward_fn = backward_im2col if variant == "im2col" else backward_width_loop
    return Tensor._make(out_data, parents, backward_fn)


def max_over_time(x: Tensor, mask: np.ndarray | None = None) -> Tensor:
    """Max-pool a ``(B, T, F)`` tensor over the time axis to ``(B, F)``.

    Parameters
    ----------
    mask:
        Optional boolean ``(B, T)`` validity mask; padded positions are
        excluded from the max. Every row must have at least one valid step.
    """
    data = x.data
    if mask is not None:
        m = np.asarray(mask, dtype=bool)
        if m.shape != data.shape[:2]:
            raise ValueError(f"mask shape {m.shape} does not match {data.shape[:2]}")
        if not m.any(axis=1).all():
            raise ValueError("max_over_time mask has a row with no valid positions")
        data = np.where(m[:, :, None], data, -np.inf)

    out_data = data.max(axis=1)
    if not _tracking(x):
        return Tensor(out_data)
    argmax_mask = data == data.max(axis=1, keepdims=True)
    first = np.cumsum(argmax_mask, axis=1) == 1
    argmax_mask = argmax_mask & first

    def backward_fn(grad: np.ndarray) -> None:
        x._accumulate(argmax_mask * grad[:, None, :])

    return Tensor._link(out_data, (x,), backward_fn)


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable softmax along ``axis``."""
    shifted = x.data - x.data.max(axis=axis, keepdims=True)
    exp = np.exp(shifted)
    out_data = exp / exp.sum(axis=axis, keepdims=True)

    def backward_fn(grad: np.ndarray) -> None:
        dot = (grad * out_data).sum(axis=axis, keepdims=True)
        x._accumulate(out_data * (grad - dot))

    return Tensor._make(out_data, (x,), backward_fn)


def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable log-softmax along ``axis``."""
    shifted = x.data - x.data.max(axis=axis, keepdims=True)
    log_norm = np.log(np.exp(shifted).sum(axis=axis, keepdims=True))
    out_data = shifted - log_norm
    soft = np.exp(out_data)

    def backward_fn(grad: np.ndarray) -> None:
        x._accumulate(grad - soft * grad.sum(axis=axis, keepdims=True))

    return Tensor._make(out_data, (x,), backward_fn)


def dropout(x: Tensor, rate: float, rng: np.random.Generator, training: bool) -> Tensor:
    """Inverted dropout: scales kept activations by ``1/(1-rate)``.

    The RNG is passed explicitly so training runs are reproducible end to
    end (DESIGN.md scaling policy).
    """
    if not 0.0 <= rate < 1.0:
        raise ValueError(f"dropout rate must be in [0, 1), got {rate}")
    if not training or rate == 0.0:
        return x
    keep = 1.0 - rate
    mask = (rng.random(x.data.shape) < keep) / keep

    def backward_fn(grad: np.ndarray) -> None:
        x._accumulate(grad * mask)

    return Tensor._make(x.data * mask, (x,), backward_fn)


def concat(tensors: list[Tensor], axis: int = -1) -> Tensor:
    """Concatenate tensors along ``axis`` (graph-aware)."""
    if not tensors:
        raise ValueError("concat requires at least one tensor")
    out_data = np.concatenate([t.data for t in tensors], axis=axis)
    sizes = [t.data.shape[axis] for t in tensors]
    offsets = np.cumsum([0] + sizes)

    def backward_fn(grad: np.ndarray) -> None:
        for tensor, start, stop in zip(tensors, offsets[:-1], offsets[1:]):
            index = [slice(None)] * grad.ndim
            index[axis] = slice(start, stop)
            tensor._accumulate(grad[tuple(index)])

    return Tensor._make(out_data, tuple(tensors), backward_fn)


def stack(tensors: list[Tensor], axis: int = 0) -> Tensor:
    """Stack equal-shape tensors along a new ``axis`` (graph-aware)."""
    if not tensors:
        raise ValueError("stack requires at least one tensor")
    out_data = np.stack([t.data for t in tensors], axis=axis)

    def backward_fn(grad: np.ndarray) -> None:
        slices = np.moveaxis(grad, axis, 0)
        for tensor, piece in zip(tensors, slices):
            tensor._accumulate(piece)

    return Tensor._make(out_data, tuple(tensors), backward_fn)


def unbind(x: Tensor, axis: int = 0) -> list[Tensor]:
    """Split ``x`` into views along ``axis`` (the axis is removed).

    Inverse of :func:`stack`. Each piece's backward adds its gradient in
    place into the parent's buffer (:meth:`Tensor._accumulate_at`), so
    consuming all ``T`` slices of a sequence costs O(T) total backward
    memory traffic rather than O(T^2). Used by the GRU time loop to read
    the precomputed per-step input projections.
    """
    axis = axis % x.data.ndim
    length = x.data.shape[axis]
    tracked = _tracking(x)
    pieces: list[Tensor] = []
    for position in range(length):
        index = (slice(None),) * axis + (position,)
        piece_data = np.ascontiguousarray(x.data[index])
        if not tracked:
            pieces.append(Tensor(piece_data))
            continue

        def backward_fn(grad: np.ndarray, index=index) -> None:
            x._accumulate_at(index, grad)

        pieces.append(Tensor._link(piece_data, (x,), backward_fn))
    return pieces


def gru_step(gx: Tensor, h: Tensor, w_h: Tensor, mask: np.ndarray | None = None) -> Tensor:
    """One fused GRU timestep (PyTorch gate convention).

    Computes, as a single tape node::

        gh = h @ w_h                      # (B, 3H), columns [r | z | n]
        r  = sigmoid(gx_r + gh_r)
        z  = sigmoid(gx_z + gh_z)
        n  = tanh(gx_n + r * gh_n)
        h' = (1 - z) * n + z * h
        out = m * h' + (1 - m) * h        # when a padding mask is given

    Parameters
    ----------
    gx:
        ``(B, 3H)`` precomputed input projection ``x_t @ w_x + b`` for this
        timestep (hoisted out of the time loop as one big matmul).
    h:
        ``(B, H)`` previous hidden state.
    w_h:
        ``(H, 3H)`` fused recurrent weight matrix.
    mask:
        Optional ``(B,)`` float validity mask; padded rows (0) copy the
        previous state forward, exactly as the pre-fusion time loop did.

    The backward closure re-derives all six gate gradients analytically
    from the saved activations (the fused sigmoid/tanh-with-grad path), so
    no intermediate tensors ever land on the tape.
    """
    hidden = h.data.shape[1]
    if gx.data.shape != (h.data.shape[0], 3 * hidden):
        raise ValueError(f"gx shape {gx.data.shape} != ({h.data.shape[0]}, {3 * hidden})")
    if w_h.data.shape != (hidden, 3 * hidden):
        raise ValueError(f"w_h shape {w_h.data.shape} != ({hidden}, {3 * hidden})")

    gh = h.data @ w_h.data
    r = _stable_sigmoid(gx.data[:, :hidden] + gh[:, :hidden])
    z = _stable_sigmoid(gx.data[:, hidden : 2 * hidden] + gh[:, hidden : 2 * hidden])
    gh_n = gh[:, 2 * hidden :]
    n = np.tanh(gx.data[:, 2 * hidden :] + r * gh_n)
    h_new = (1.0 - z) * n + z * h.data

    m = None
    if mask is not None:
        m = np.asarray(mask, dtype=np.float64).reshape(-1, 1)
        out_data = h_new * m + h.data * (1.0 - m)
    else:
        out_data = h_new

    if not _tracking(gx, h, w_h):
        return Tensor(out_data)

    h_prev = h.data

    def backward_fn(grad: np.ndarray) -> None:
        if m is not None:
            d_new = grad * m
            d_prev = grad * (1.0 - m) + d_new * z
        else:
            d_new = grad
            d_prev = d_new * z
        da_n = d_new * (1.0 - z) * (1.0 - n * n)     # through tanh
        dr = da_n * gh_n
        da_z = d_new * (h_prev - n) * z * (1.0 - z)  # through sigmoid(z)
        da_r = dr * r * (1.0 - r)                    # through sigmoid(r)
        dgh = np.concatenate([da_r, da_z, da_n * r], axis=1)
        d_prev = d_prev + dgh @ w_h.data.T
        if w_h._tracked:
            w_h._accumulate(h_prev.T @ dgh)
        if h._tracked:
            h._accumulate(d_prev)
        if gx._tracked:
            gx._accumulate(np.concatenate([da_r, da_z, da_n], axis=1))

    return Tensor._link(out_data, (gx, h, w_h), backward_fn)


def _prefix_lengths(mask: np.ndarray) -> np.ndarray | None:
    """Return per-row valid lengths if ``mask`` is a prefix mask, else None.

    A prefix mask (ones then zeros in every row) is what padding to a
    common length produces; it allows the packed-sequence fast path.
    Fractional (soft) mask values disqualify the mask — they need the
    general m-weighted carry, not a run/freeze decision.
    """
    raw = np.asarray(mask)
    if raw.dtype != bool and not (((raw == 0) | (raw == 1)).all()):
        return None
    m = raw.astype(bool)
    lengths = m.sum(axis=1)
    positions = np.arange(m.shape[1])
    if np.array_equal(m, positions[None, :] < lengths[:, None]):
        return lengths.astype(np.int64)
    return None


def gru_sequence(
    gx: Tensor,
    h0: np.ndarray,
    w_h: Tensor,
    mask: np.ndarray | None = None,
    *,
    w_x: Tensor | None = None,
    bias: Tensor | None = None,
) -> Tensor:
    """Run a whole GRU layer (projection + time loop) as a *single* tape node.

    The per-step math of :func:`gru_step` (same gate equations, same
    padding-mask carry), but with the entire ``(B, T)`` unroll fused:

    * when ``w_x``/``bias`` are given, the input projection
      ``gx = x @ w_x + bias`` for the *whole sequence* runs inside the op
      as one flattened ``(B·T, D) @ (D, 3H)`` GEMM (and its backward as
      two GEMMs plus a sum), so the full GRU layer is one tape entry;
    * the forward loop writes gate activations into preallocated
      ``(T, B, *)`` buffers with in-place NumPy ops;
    * padding masks that are prefix masks (the output of padding ragged
      sentences to a common length) trigger the *packed-sequence* path:
      rows are sorted by length and each step runs on only the still-active
      prefix of the batch, so padded positions cost a row copy instead of
      full gate math — the classic cuDNN/pack_padded_sequence trick.
      Results are identical because a masked step is exactly a state copy;
    * the backward closure runs backpropagation-through-time with all
      time-independent derivative factors (``1 - n^2``, ``z(1-z)``,
      ``r(1-r)``, ...) precomputed as vectorized whole-sequence arrays and
      the recurrent weight gradient reduced to flattened-unroll GEMMs.

    The tape cost of a ``T``-step unroll drops from ~12·T nodes to 1.

    Parameters
    ----------
    gx:
        ``(B, T, 3H)`` precomputed input projections ``x @ w_x + b`` (gate
        order ``[r | z | n]``) — or, when ``w_x`` is given, the raw
        ``(B, T, D)`` input sequence.
    h0:
        ``(B, H)`` initial hidden state, a constant array (no gradient
        flows to it; the tagger always starts at zeros).
    w_h:
        ``(H, 3H)`` fused recurrent weights.
    mask:
        Optional ``(B, T)`` validity mask; padded steps copy the previous
        state forward exactly, keeping outputs invariant to padding length.
    w_x, bias:
        Optional fused input projection ``(D, 3H)`` weights and ``(3H,)``
        bias, applied to ``gx`` inside the op (both or neither).
    """
    if (w_x is None) != (bias is None):
        raise ValueError("w_x and bias must be given together")
    x = gx
    in_dim = 0
    if w_x is not None:
        batch, time, in_dim = x.data.shape
        if w_x.data.shape[0] != in_dim:
            raise ValueError(f"w_x rows {w_x.data.shape[0]} != input dim {in_dim}")
        triple = w_x.data.shape[1]
    else:
        batch, time, triple = x.data.shape
    hidden = triple // 3
    if triple != 3 * hidden:
        raise ValueError(f"gx last axis {triple} is not divisible by 3")
    if h0.shape != (batch, hidden):
        raise ValueError(f"h0 shape {h0.shape} != ({batch}, {hidden})")
    if w_h.data.shape != (hidden, 3 * hidden):
        raise ValueError(f"w_h shape {w_h.data.shape} != ({hidden}, {3 * hidden})")

    two = 2 * hidden

    # Packed-sequence fast path: sort rows by length (descending) so each
    # timestep operates on a contiguous "active" batch prefix.
    order = inverse_order = None
    active: np.ndarray | None = None
    mask_t_major = None
    valid_flat: np.ndarray | None = None  # (B*T,) valid positions, input order
    if mask is not None:
        lengths = _prefix_lengths(mask)
        if lengths is not None:
            order = np.argsort(-lengths, kind="stable")
            inverse_order = np.argsort(order, kind="stable")
            sorted_lengths = lengths[order]
            # active[t] = number of rows still running at step t.
            active = (sorted_lengths[None, :] > np.arange(time)[:, None]).sum(axis=1)
            if lengths.sum() < 0.9 * batch * time:
                # Sparse enough that compacting the flattened projection /
                # weight-gradient GEMMs to valid rows pays for the gathers.
                valid_flat = np.asarray(mask, dtype=bool).reshape(-1)
        else:  # general mask: fall back to the m-weighted carry
            mask_t_major = np.ascontiguousarray(np.asarray(mask, dtype=np.float64).T)

    x_flat = x_compact = None
    if w_x is not None:
        x_flat = x.data.reshape(batch * time, in_dim)
        if valid_flat is not None:
            # Project only real tokens; padded gx rows are never read by
            # the packed loop (their states are frozen copies).
            x_compact = x_flat[valid_flat]
            projected = x_compact @ w_x.data
            projected += bias.data
            gx_flat = np.zeros((batch * time, triple))
            gx_flat[valid_flat] = projected
        else:
            gx_flat = x_flat @ w_x.data
            gx_flat += bias.data
        gx_data = gx_flat.reshape(batch, time, triple)
    else:
        gx_data = x.data

    if order is not None:
        # Fancy-index the transposed view: one pass yields a contiguous
        # (T, B, 3H) array in sorted row order.
        gx_t_major = np.swapaxes(gx_data, 0, 1)[:, order]
        h_start = h0[order]
    else:
        gx_t_major = np.ascontiguousarray(np.swapaxes(gx_data, 0, 1))
        h_start = h0

    # Saved activations for backward; also serve as forward work buffers.
    # zeros (not empty): rows beyond the active prefix are never written
    # but do flow through the backward whole-array precomputes, and
    # uninitialized garbage there could overflow.
    gates_rz = np.zeros((time, batch, two))          # sigmoid(r), sigmoid(z)
    candidate = np.zeros((time, batch, hidden))      # tanh candidate n
    recur = np.zeros((time, batch, 3 * hidden))      # h @ w_h
    states = np.empty((time, batch, hidden))         # h_t (sorted order)
    scratch = np.empty((batch, hidden))

    h = h_start
    for t in range(time):
        a = batch if active is None else int(active[t])
        out_t = states[t]
        if a < batch:
            out_t[a:] = h[a:]  # finished rows: frozen state, no gate math
        if a == 0:
            h = out_t
            continue
        a_t = gx_t_major[t]
        gh = recur[t]
        np.matmul(h[:a], w_h.data, out=gh[:a])
        rz = gates_rz[t, :a]
        np.add(a_t[:a, :two], gh[:a, :two], out=rz)
        # In-place stable sigmoid: (1 + tanh(x/2)) / 2.
        rz *= 0.5
        np.tanh(rz, out=rz)
        rz += 1.0
        rz *= 0.5
        r = rz[:, :hidden]
        z = rz[:, hidden:]
        n = candidate[t, :a]
        np.multiply(r, gh[:a, two:], out=n)
        n += a_t[:a, two:]
        np.tanh(n, out=n)
        # h' = n + z * (h - n)  ==  (1 - z) * n + z * h
        np.subtract(h[:a], n, out=out_t[:a])
        out_t[:a] *= z
        out_t[:a] += n
        if mask_t_major is not None:
            m = mask_t_major[t][:, None]
            # out = h + m * (h' - h): padded rows (m = 0) copy h exactly.
            np.subtract(out_t, h, out=scratch)
            scratch *= m
            np.add(h, scratch, out=out_t)
        h = out_t

    if inverse_order is not None:
        out_data = np.swapaxes(states, 0, 1)[inverse_order]    # one-pass unsort
    else:
        out_data = np.ascontiguousarray(np.swapaxes(states, 0, 1))  # (B, T, H)

    parents: tuple[Tensor, ...] = (x, w_h) if w_x is None else (x, w_h, w_x, bias)
    if not _tracking(*parents):
        return Tensor(out_data)

    def backward_fn(grad: np.ndarray) -> None:
        if order is not None:
            grad = grad[order]
        grad_t_major = np.swapaxes(grad, 0, 1)  # (T, B, H) view
        h_prev_seq = np.concatenate([h_start[None], states[:-1]], axis=0)
        r_seq = gates_rz[:, :, :hidden]
        z_seq = gates_rz[:, :, hidden:]
        # Whole-sequence derivative factors (no per-step transcendentals).
        dn_da = 1.0 - candidate * candidate                       # tanh'
        dz_chain = (h_prev_seq - candidate) * (z_seq * (1.0 - z_seq))
        dr_chain = recur[:, :, two:] * (r_seq * (1.0 - r_seq))
        # d_gates is laid out as the *input* gradient [da_r | da_z | da_n];
        # the recurrent side only differs in the n-columns (da_n * r), kept
        # in d_recur_n. Both GEMMs below are split accordingly, which lets
        # the input gradient be handed to gx with a single permute pass.
        d_gates = np.zeros((time, batch, 3 * hidden))
        d_recur_n = np.zeros((time, batch, hidden))
        w_h_t = np.ascontiguousarray(w_h.data.T)
        w_h_t_rz = w_h_t[:two]
        w_h_t_n = w_h_t[two:]

        total = np.empty((batch, hidden))
        d_new = np.empty((batch, hidden))
        d_keep = np.empty((batch, hidden))
        dnz = np.empty((batch, hidden))
        dn = np.empty((batch, hidden))
        rec = np.empty((batch, hidden))
        rec_n = np.empty((batch, hidden))
        d_prev = np.zeros((batch, hidden))

        for t in range(time - 1, -1, -1):
            a = batch if active is None else int(active[t])
            if a < batch:
                d_prev[a:] += grad_t_major[t][a:]  # frozen rows just carry
            if a == 0:
                continue
            tot = total[:a]
            np.add(grad_t_major[t][:a], d_prev[:a], out=tot)
            if mask_t_major is not None:
                m = mask_t_major[t][:, None]
                np.multiply(tot, m, out=d_new[:a])
                np.subtract(tot, d_new[:a], out=d_keep[:a])  # (1 - m) carry
                dnw = d_new[:a]
            else:
                dnw = tot
            np.multiply(dnw, z_seq[t, :a], out=dnz[:a])
            np.subtract(dnw, dnz[:a], out=dn[:a])            # d_new * (1 - z)
            dg = d_gates[t, :a]
            da_n = dg[:, two:]
            np.multiply(dn[:a], dn_da[t, :a], out=da_n)
            np.multiply(da_n, dr_chain[t, :a], out=dg[:, :hidden])       # da_r
            np.multiply(dnw, dz_chain[t, :a], out=dg[:, hidden:two])     # da_z
            dgh_n = d_recur_n[t, :a]
            np.multiply(da_n, r_seq[t, :a], out=dgh_n)
            np.matmul(dg[:, :two], w_h_t_rz, out=rec[:a])
            np.matmul(dgh_n, w_h_t_n, out=rec_n[:a])
            rec[:a] += rec_n[:a]
            np.add(rec[:a], dnz[:a], out=d_prev[:a])
            if mask_t_major is not None:
                d_prev[:a] += d_keep[:a]

        needs_input_grad = (
            x._tracked
            if w_x is None
            else (x._tracked or w_x._tracked or bias._tracked)
        )
        if needs_input_grad:
            d_inputs = np.swapaxes(d_gates, 0, 1)  # (B, T, 3H) view
            if inverse_order is not None:
                d_inputs = d_inputs[inverse_order]  # one-pass unsort (fresh)
            if w_x is None:
                if inverse_order is not None:
                    x._accumulate_owned(d_inputs)
                else:
                    x._accumulate(d_inputs)
            else:
                dg_flat = np.ascontiguousarray(d_inputs).reshape(batch * time, 3 * hidden)
                if valid_flat is not None:
                    # Padded rows of dg_flat are exactly zero — compact the
                    # projection-gradient GEMMs to real tokens only.
                    dg_compact = dg_flat[valid_flat]
                    if bias._tracked:
                        bias._accumulate_owned(dg_compact.sum(axis=0))
                    if w_x._tracked:
                        w_x._accumulate_owned(x_compact.T @ dg_compact)
                    if x._tracked:
                        dx_flat = np.zeros((batch * time, in_dim))
                        dx_flat[valid_flat] = dg_compact @ w_x.data.T
                        x._accumulate_owned(dx_flat.reshape(batch, time, in_dim))
                else:
                    if bias._tracked:
                        bias._accumulate_owned(dg_flat.sum(axis=0))
                    if w_x._tracked:
                        w_x._accumulate_owned(x_flat.T @ dg_flat)
                    if x._tracked:
                        x._accumulate_owned((dg_flat @ w_x.data.T).reshape(batch, time, in_dim))
        if w_h._tracked:
            # Σ_t h_prev[t].T @ dgh[t] as flattened-unroll GEMMs (the n
            # columns use d_recur_n, the r/z columns d_gates directly).
            flat_prev = h_prev_seq.reshape(time * batch, hidden)
            flat_gates = d_gates.reshape(time * batch, 3 * hidden)
            flat_recur_n = d_recur_n.reshape(time * batch, hidden)
            if active is not None and valid_flat is not None:
                # Same compaction in the sorted layout: only the staircase
                # of still-active rows carries nonzero gate gradients.
                stair = (np.arange(batch)[None, :] < active[:, None]).reshape(-1)
                flat_prev = flat_prev[stair]
                flat_gates = flat_gates[stair]
                flat_recur_n = flat_recur_n[stair]
            w_grad = np.empty_like(w_h.data)
            np.matmul(flat_prev.T, flat_gates[:, :two], out=w_grad[:, :two])
            np.matmul(flat_prev.T, flat_recur_n, out=w_grad[:, two:])
            w_h._accumulate_owned(w_grad)

    return Tensor._link(out_data, parents, backward_fn)


def cross_entropy_soft(
    logits: Tensor,
    target: np.ndarray,
    weights: np.ndarray | None = None,
) -> Tensor:
    """Soft-target cross-entropy ``-(1/B) sum_i w_i * <q_i, log p_i>``.

    This is the pseudo-M-step loss of the paper: Eq. 8 with uniform weights,
    Eq. 10 when ``weights`` carries ``num(J(i))`` (the number of annotators
    per instance).

    Parameters
    ----------
    logits:
        ``(B, K)`` unnormalized scores.
    target:
        ``(B, K)`` target distribution (rows sum to one), a plain array —
        targets are constants produced by the pseudo-E-step.
    weights:
        Optional ``(B,)`` per-instance weights.
    """
    target = np.asarray(target, dtype=np.float64)
    if target.shape != logits.shape:
        raise ValueError(f"target shape {target.shape} != logits shape {logits.shape}")
    logp = log_softmax(logits, axis=-1)
    per_instance = -(Tensor(target) * logp).sum(axis=-1)
    if weights is not None:
        w = np.asarray(weights, dtype=np.float64)
        if w.shape != (logits.shape[0],):
            raise ValueError(f"weights shape {w.shape} != ({logits.shape[0]},)")
        per_instance = per_instance * Tensor(w)
    return per_instance.mean()


def sequence_cross_entropy_soft(
    logits: Tensor,
    target: np.ndarray,
    mask: np.ndarray,
    weights: np.ndarray | None = None,
) -> Tensor:
    """Soft-target cross-entropy for sequence tagging, averaged over valid tokens.

    Parameters
    ----------
    logits:
        ``(B, T, K)`` per-token scores.
    target:
        ``(B, T, K)`` per-token target distributions.
    mask:
        Boolean ``(B, T)``; padded tokens contribute nothing.
    weights:
        Optional ``(B, T)`` per-token weights (Eq. 10 for sequences: number
        of annotators who labeled the token).
    """
    target = np.asarray(target, dtype=np.float64)
    mask = np.asarray(mask, dtype=np.float64)
    if target.shape != logits.shape:
        raise ValueError(f"target shape {target.shape} != logits shape {logits.shape}")
    if mask.shape != logits.shape[:2]:
        raise ValueError(f"mask shape {mask.shape} != {logits.shape[:2]}")
    logp = log_softmax(logits, axis=-1)
    per_token = -(Tensor(target) * logp).sum(axis=-1)
    scale = mask
    if weights is not None:
        w = np.asarray(weights, dtype=np.float64)
        if w.shape != mask.shape:
            raise ValueError(f"weights shape {w.shape} != mask shape {mask.shape}")
        scale = mask * w
    total = (per_token * Tensor(scale)).sum()
    denom = max(float(mask.sum()), 1.0)
    return total * (1.0 / denom)
