"""Per-primitive vector-Jacobian products: the registry the tape replays.

The tape engine (:mod:`repro.autodiff.tensor`) records, for every op, a
``(primitive, parents, ans, ctx)`` entry instead of a baked closure; this
module is the single place that says *how gradients flow* for each
primitive — the autograd-style split of "what ops exist" (Tensor methods
and :mod:`repro.autodiff.functional`) from "how to differentiate them".

Three registration forms cover every op in the engine:

* :func:`defvjp` — per-argument VJPs ``(g, ans, *ctx) -> grad_i``, one per
  parent (``None`` for non-differentiable arguments). Each entry carries an
  ``owned`` flag: ``True`` means the VJP returns a freshly allocated array
  (or a view of one referenced nowhere else) that the engine may store
  without a defensive copy; ``False`` means the result may alias the
  incoming gradient (e.g. broadcast-free ``add``, ``reshape``) and must be
  copied on first accumulation. Getting this wrong corrupts diamond-shaped
  graphs, so the flags mirror the pre-registry closures' use of
  ``_accumulate`` vs ``_accumulate_owned`` exactly.
* A VJP may also return an :class:`IndexedGrad` — a ``(index, grad)``
  sentinel accumulated in place into the parent's buffer slice. This is
  what keeps basic-slice ``__getitem__``/``unbind`` backward O(T) for the
  GRU time loop instead of one full-size scratch array per consumer.
* :func:`defvjp_fused` — a single joint VJP ``(g, ans, needs, *ctx) ->
  tuple_of_grads`` for primitives whose per-argument gradients share heavy
  intermediate work (the BPTT loop of ``gru_sequence``, the gate algebra of
  ``gru_step``, variable-arity ``concat``/``stack``). ``needs`` mirrors
  ``parent._tracked`` per argument; entries may be ``None``. Fused results
  are always treated as owned, so they must never return a view of ``g``.

Engine contract: VJPs must **not** mutate ``g`` (several parents may read
it), and the incoming ``g`` always has the dtype of the primitive's output
(``ans``), because the engine accumulates every node's gradient buffer in
that node's own dtype. Under the float32 fast path this is what makes the
whole backward pass run in float32 without any per-op dtype plumbing.

The meta-test ``tests/autodiff/test_vjp_registry.py`` enforces that every
primitive registered here has a gradcheck case (numeric vs analytic at
float64), so new ops cannot land without gradient coverage.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

__all__ = [
    "defvjp",
    "defvjp_fused",
    "registered_primitives",
    "IndexedGrad",
    "unbroadcast",
    "VJP_TABLE",
    "VJP_OWNED",
    "FUSED_TABLE",
]

# primitive name -> per-argument VJPs / ownership flags, or a fused VJP.
VJP_TABLE: dict[str, tuple[Callable | None, ...]] = {}
VJP_OWNED: dict[str, tuple[bool, ...]] = {}
FUSED_TABLE: dict[str, Callable] = {}


class IndexedGrad:
    """Sentinel VJP result: accumulate ``grad`` into ``parent.grad[index]``.

    Only valid for *basic* indices (no duplicated positions), where the
    in-place ``+=`` on the slice is exact.
    """

    __slots__ = ("index", "grad")

    def __init__(self, index, grad: np.ndarray) -> None:
        self.index = index
        self.grad = grad


def defvjp(
    primitive: str,
    *vjps: Callable | None,
    owned: Sequence[bool] | None = None,
) -> None:
    """Register per-argument VJPs for ``primitive``.

    ``owned[i]`` declares whether VJP ``i`` returns a freshly allocated
    array the engine may take ownership of (default: not owned, i.e. copy
    on first accumulation — always safe).
    """
    if primitive in VJP_TABLE or primitive in FUSED_TABLE:
        raise ValueError(f"primitive {primitive!r} already registered")
    if owned is None:
        owned = (False,) * len(vjps)
    if len(owned) != len(vjps):
        raise ValueError(
            f"{primitive!r}: owned flags ({len(owned)}) != vjps ({len(vjps)})"
        )
    VJP_TABLE[primitive] = tuple(vjps)
    VJP_OWNED[primitive] = tuple(bool(flag) for flag in owned)


def defvjp_fused(primitive: str, fn: Callable) -> None:
    """Register a joint VJP computing all argument gradients in one call."""
    if primitive in VJP_TABLE or primitive in FUSED_TABLE:
        raise ValueError(f"primitive {primitive!r} already registered")
    FUSED_TABLE[primitive] = fn


def registered_primitives() -> frozenset[str]:
    """Every primitive name the tape can replay."""
    return frozenset(VJP_TABLE) | frozenset(FUSED_TABLE)


def unbroadcast(grad: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
    """Reduce ``grad`` so it matches ``shape`` after a broadcast op.

    NumPy broadcasting can prepend axes and stretch length-1 axes; the
    gradient of a broadcast is the sum over the broadcast axes. May return
    ``grad`` itself (or a view) when no reduction is needed — callers that
    register through :func:`defvjp` must mark such results not-owned.
    """
    if grad.shape == shape:
        return grad
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    stretched = tuple(i for i, n in enumerate(shape) if n == 1 and grad.shape[i] != 1)
    if stretched:
        grad = grad.sum(axis=stretched, keepdims=True)
    return grad.reshape(shape)


# --------------------------------------------------------------------- #
# Tensor arithmetic (ctx: operand data arrays unless noted)
# --------------------------------------------------------------------- #
defvjp(
    "add",
    lambda g, ans, x, y: unbroadcast(g, x.shape),
    lambda g, ans, x, y: unbroadcast(g, y.shape),
)

defvjp("neg", lambda g, ans: -g, owned=(True,))

defvjp(
    "sub",
    lambda g, ans, x, y: unbroadcast(g, x.shape),
    lambda g, ans, x, y: unbroadcast(-g, y.shape),
    owned=(False, True),
)

defvjp(
    "mul",
    lambda g, ans, x, y: unbroadcast(g * y, x.shape),
    lambda g, ans, x, y: unbroadcast(g * x, y.shape),
    owned=(True, True),
)

defvjp(
    "div",
    lambda g, ans, x, y: unbroadcast(g / y, x.shape),
    lambda g, ans, x, y: unbroadcast(-g * x / (y**2), y.shape),
    owned=(True, True),
)


def _pow_vjp(g: np.ndarray, ans: np.ndarray, x: np.ndarray, exponent) -> np.ndarray:
    if exponent == 2:
        # Hot case (squared losses): avoid the elementwise pow call.
        return g * 2.0 * x
    return g * exponent * x ** (exponent - 1)


defvjp("pow", _pow_vjp, owned=(True,))

defvjp(
    "matmul",
    lambda g, ans, x, y: unbroadcast(g @ np.swapaxes(y, -1, -2), x.shape),
    lambda g, ans, x, y: unbroadcast(np.swapaxes(x, -1, -2) @ g, y.shape),
    owned=(True, True),
)

# --------------------------------------------------------------------- #
# Elementwise nonlinearities
# --------------------------------------------------------------------- #
defvjp("exp", lambda g, ans: g * ans, owned=(True,))
defvjp("log", lambda g, ans, x: g / x, owned=(True,))
defvjp("tanh", lambda g, ans: g * (1.0 - ans**2), owned=(True,))
defvjp("sigmoid", lambda g, ans: g * ans * (1.0 - ans), owned=(True,))
defvjp("relu", lambda g, ans, mask: g * mask, owned=(True,))
defvjp("clip", lambda g, ans, mask: g * mask, owned=(True,))

# --------------------------------------------------------------------- #
# Reductions (ctx: input shape / routing mask plus the reduce arguments)
# --------------------------------------------------------------------- #


def _sum_vjp(g, ans, shape, axis, keepdims):
    if axis is not None and not keepdims:
        axes = (axis,) if isinstance(axis, int) else axis
        ndim = len(shape)
        for ax in sorted(a % ndim for a in axes):
            g = np.expand_dims(g, ax)
    return np.broadcast_to(g, shape).copy()


defvjp("sum", _sum_vjp, owned=(True,))


def _max_vjp(g, ans, mask, axis, keepdims):
    # ``mask`` routes the gradient to the first argmax entry along ``axis``.
    g = g if keepdims else np.expand_dims(g, axis)
    return mask * g


defvjp("max", _max_vjp, owned=(True,))

# --------------------------------------------------------------------- #
# Shape manipulation and indexing
# --------------------------------------------------------------------- #
defvjp("reshape", lambda g, ans, shape: g.reshape(shape))
defvjp("transpose", lambda g, ans, inverse: g.transpose(inverse))

# Basic slices select each element at most once: accumulate in place.
defvjp("getitem", lambda g, ans, index: IndexedGrad(index, g))


def _getitem_fancy_vjp(g, ans, x, index):
    full = np.zeros_like(x)
    np.add.at(full, index, g)
    return full


defvjp("getitem_fancy", _getitem_fancy_vjp, owned=(True,))

defvjp("unbind", lambda g, ans, index: IndexedGrad(index, g))

# --------------------------------------------------------------------- #
# functional.py composites
# --------------------------------------------------------------------- #


def _embedding_vjp(g, ans, w, idx):
    full = np.zeros_like(w)
    np.add.at(full, idx.reshape(-1), g.reshape(-1, w.shape[1]))
    return full


defvjp("embedding", _embedding_vjp, owned=(True,))


# conv1d ctx layouts are produced by functional.conv1d_seq:
#   im2col:     (cols, w, padded_shape, width, dim, same, left, time)
#   width_loop: (data, w, width, dim, out_time, same, left, time)
# Parents are (x, weight[, bias]); zip truncation drops the bias VJP when
# the layer has no bias.


def _conv1d_im2col_vjp_x(g, ans, cols, w, padded_shape, width, dim, same, left, time):
    batch = padded_shape[0]
    gcols = g @ w.T                                   # (B, T_out, width*D)
    gcols = gcols.reshape(batch, -1, width, dim)
    xgrad = np.zeros(padded_shape, dtype=gcols.dtype)
    for offset in range(width):
        xgrad[:, offset : offset + gcols.shape[1], :] += gcols[:, :, offset, :]
    if same:
        xgrad = xgrad[:, left : left + time, :]
    return xgrad


def _conv1d_im2col_vjp_w(g, ans, cols, w, padded_shape, width, dim, same, left, time):
    # (width*D, F) = sum_b cols_b^T @ grad_b
    return np.einsum("btk,btf->kf", cols, g)


defvjp(
    "conv1d_im2col",
    _conv1d_im2col_vjp_x,
    _conv1d_im2col_vjp_w,
    lambda g, ans, *ctx: g.sum(axis=(0, 1)),
    owned=(True, True, True),
)


def _conv1d_width_loop_vjp_x(g, ans, data, w, width, dim, out_time, same, left, time):
    xgrad = np.zeros(data.shape, dtype=np.result_type(w, g))
    for offset in range(width):
        block = w[offset * dim : (offset + 1) * dim]
        xgrad[:, offset : offset + out_time, :] += g @ block.T
    if same:
        xgrad = xgrad[:, left : left + time, :]
    return xgrad


def _conv1d_width_loop_vjp_w(g, ans, data, w, width, dim, out_time, same, left, time):
    # Per-offset (D, F) GEMMs into the fused weight gradient; peak extra
    # memory is one contiguous input-sized block, never the
    # (B, T_out, width*D) window expansion.
    batch = data.shape[0]
    wgrad = np.empty(w.shape, dtype=np.result_type(data, g))
    grad_flat = g.reshape(batch * out_time, -1)
    for offset in range(width):
        block = np.ascontiguousarray(
            data[:, offset : offset + out_time, :]
        ).reshape(batch * out_time, dim)
        np.matmul(block.T, grad_flat, out=wgrad[offset * dim : (offset + 1) * dim])
    return wgrad


defvjp(
    "conv1d_width_loop",
    _conv1d_width_loop_vjp_x,
    _conv1d_width_loop_vjp_w,
    lambda g, ans, *ctx: g.sum(axis=(0, 1)),
    owned=(True, True, True),
)

defvjp(
    "max_over_time",
    lambda g, ans, argmax_mask: argmax_mask * g[:, None, :],
    owned=(True,),
)


def _softmax_vjp(g, ans, axis):
    dot = (g * ans).sum(axis=axis, keepdims=True)
    return ans * (g - dot)


defvjp("softmax", _softmax_vjp, owned=(True,))

defvjp(
    "log_softmax",
    lambda g, ans, soft, axis: g - soft * g.sum(axis=axis, keepdims=True),
    owned=(True,),
)

defvjp("dropout", lambda g, ans, mask: g * mask, owned=(True,))


def _concat_fused(g, ans, needs, axis, offsets):
    grads = []
    for need, start, stop in zip(needs, offsets[:-1], offsets[1:]):
        if not need:
            grads.append(None)
            continue
        index = [slice(None)] * g.ndim
        index[axis] = slice(start, stop)
        # Copy: fused results are owned, and a slice of g must not be
        # stored by reference (g is shared across every parent).
        grads.append(np.array(g[tuple(index)], copy=True))
    return grads


defvjp_fused("concat", _concat_fused)


def _stack_fused(g, ans, needs, axis):
    slices = np.moveaxis(g, axis, 0)
    return [
        np.array(piece, copy=True) if need else None
        for need, piece in zip(needs, slices)
    ]


defvjp_fused("stack", _stack_fused)


# --------------------------------------------------------------------- #
# Fused GRU ops (hand-derived BPTT; parents share the heavy intermediates,
# so these register as joint VJPs — per-argument entries would recompute
# the whole gate algebra / time loop once per parent).
# --------------------------------------------------------------------- #


def _gru_step_fused(g, ans, needs, r, z, n, gh_n, h_prev, w_h, m):
    # Parents: (gx, h, w_h). Same algebra as the fused forward, re-derived
    # from the saved activations.
    if m is not None:
        d_new = g * m
        d_prev = g * (1.0 - m) + d_new * z
    else:
        d_new = g
        d_prev = d_new * z
    da_n = d_new * (1.0 - z) * (1.0 - n * n)     # through tanh
    dr = da_n * gh_n
    da_z = d_new * (h_prev - n) * z * (1.0 - z)  # through sigmoid(z)
    da_r = dr * r * (1.0 - r)                    # through sigmoid(r)
    dgh = np.concatenate([da_r, da_z, da_n * r], axis=1)
    d_prev = d_prev + dgh @ w_h.T
    return (
        np.concatenate([da_r, da_z, da_n], axis=1) if needs[0] else None,
        d_prev if needs[1] else None,
        h_prev.T @ dgh if needs[2] else None,
    )


defvjp_fused("gru_step", _gru_step_fused)


def _gru_sequence_fused(g, ans, needs, saved):
    """BPTT for the whole-layer fused GRU node.

    ``saved`` is the namespace functional.gru_sequence builds at forward
    time: packed-sort bookkeeping (order/inverse_order/active/valid_flat),
    the general-mask carry (mask_t_major), the saved activation buffers
    (gates_rz/candidate/recur/states, all in the op's compute dtype), the
    flattened input (x_flat/x_compact) and the weight arrays. Parents are
    (x, w_h) or (x, w_h, w_x, bias); ``needs`` is aligned with them.
    """
    order = saved.order
    inverse_order = saved.inverse_order
    active = saved.active
    mask_t_major = saved.mask_t_major
    valid_flat = saved.valid_flat
    h_start = saved.h_start
    states = saved.states
    gates_rz = saved.gates_rz
    candidate = saved.candidate
    recur = saved.recur
    batch, time, hidden = saved.batch, saved.time, saved.hidden
    two = 2 * hidden
    dtype = states.dtype
    has_projection = saved.w_x is not None

    if order is not None:
        g = g[order]
    grad_t_major = np.swapaxes(g, 0, 1)  # (T, B, H) view
    h_prev_seq = np.concatenate([h_start[None], states[:-1]], axis=0)
    r_seq = gates_rz[:, :, :hidden]
    z_seq = gates_rz[:, :, hidden:]
    # Whole-sequence derivative factors (no per-step transcendentals).
    dn_da = 1.0 - candidate * candidate                       # tanh'
    dz_chain = (h_prev_seq - candidate) * (z_seq * (1.0 - z_seq))
    dr_chain = recur[:, :, two:] * (r_seq * (1.0 - r_seq))
    # d_gates is laid out as the *input* gradient [da_r | da_z | da_n];
    # the recurrent side only differs in the n-columns (da_n * r), kept
    # in d_recur_n. Both GEMMs below are split accordingly, which lets
    # the input gradient be handed to gx with a single permute pass.
    d_gates = np.zeros((time, batch, 3 * hidden), dtype=dtype)
    d_recur_n = np.zeros((time, batch, hidden), dtype=dtype)
    w_h_t = np.ascontiguousarray(saved.w_h.T)
    w_h_t_rz = w_h_t[:two]
    w_h_t_n = w_h_t[two:]

    total = np.empty((batch, hidden), dtype=dtype)
    d_new = np.empty((batch, hidden), dtype=dtype)
    d_keep = np.empty((batch, hidden), dtype=dtype)
    dnz = np.empty((batch, hidden), dtype=dtype)
    dn = np.empty((batch, hidden), dtype=dtype)
    rec = np.empty((batch, hidden), dtype=dtype)
    rec_n = np.empty((batch, hidden), dtype=dtype)
    d_prev = np.zeros((batch, hidden), dtype=dtype)

    for t in range(time - 1, -1, -1):
        a = batch if active is None else int(active[t])
        if a < batch:
            d_prev[a:] += grad_t_major[t][a:]  # frozen rows just carry
        if a == 0:
            continue
        tot = total[:a]
        np.add(grad_t_major[t][:a], d_prev[:a], out=tot)
        if mask_t_major is not None:
            m = mask_t_major[t][:, None]
            np.multiply(tot, m, out=d_new[:a])
            np.subtract(tot, d_new[:a], out=d_keep[:a])  # (1 - m) carry
            dnw = d_new[:a]
        else:
            dnw = tot
        np.multiply(dnw, z_seq[t, :a], out=dnz[:a])
        np.subtract(dnw, dnz[:a], out=dn[:a])            # d_new * (1 - z)
        dg = d_gates[t, :a]
        da_n = dg[:, two:]
        np.multiply(dn[:a], dn_da[t, :a], out=da_n)
        np.multiply(da_n, dr_chain[t, :a], out=dg[:, :hidden])       # da_r
        np.multiply(dnw, dz_chain[t, :a], out=dg[:, hidden:two])     # da_z
        dgh_n = d_recur_n[t, :a]
        np.multiply(da_n, r_seq[t, :a], out=dgh_n)
        np.matmul(dg[:, :two], w_h_t_rz, out=rec[:a])
        np.matmul(dgh_n, w_h_t_n, out=rec_n[:a])
        rec[:a] += rec_n[:a]
        np.add(rec[:a], dnz[:a], out=d_prev[:a])
        if mask_t_major is not None:
            d_prev[:a] += d_keep[:a]

    x_grad = w_x_grad = bias_grad = None
    needs_input_grad = (
        needs[0] if not has_projection else (needs[0] or needs[2] or needs[3])
    )
    if needs_input_grad:
        d_inputs = np.swapaxes(d_gates, 0, 1)  # (B, T, 3H) view
        if inverse_order is not None:
            d_inputs = d_inputs[inverse_order]  # one-pass unsort (fresh)
        if not has_projection:
            # d_gates is local to this call, so handing over the (possibly
            # non-contiguous) view is safe — the engine owns fused results.
            x_grad = d_inputs
        else:
            dg_flat = np.ascontiguousarray(d_inputs).reshape(
                batch * time, 3 * hidden
            )
            if valid_flat is not None:
                # Padded rows of dg_flat are exactly zero — compact the
                # projection-gradient GEMMs to real tokens only.
                dg_compact = dg_flat[valid_flat]
                if needs[3]:
                    bias_grad = dg_compact.sum(axis=0)
                if needs[2]:
                    w_x_grad = saved.x_compact.T @ dg_compact
                if needs[0]:
                    dx_flat = np.zeros((batch * time, saved.in_dim), dtype=dtype)
                    dx_flat[valid_flat] = dg_compact @ saved.w_x.T
                    x_grad = dx_flat.reshape(batch, time, saved.in_dim)
            else:
                if needs[3]:
                    bias_grad = dg_flat.sum(axis=0)
                if needs[2]:
                    w_x_grad = saved.x_flat.T @ dg_flat
                if needs[0]:
                    x_grad = (dg_flat @ saved.w_x.T).reshape(
                        batch, time, saved.in_dim
                    )
    w_h_grad = None
    if needs[1]:
        # Σ_t h_prev[t].T @ dgh[t] as flattened-unroll GEMMs (the n
        # columns use d_recur_n, the r/z columns d_gates directly).
        flat_prev = h_prev_seq.reshape(time * batch, hidden)
        flat_gates = d_gates.reshape(time * batch, 3 * hidden)
        flat_recur_n = d_recur_n.reshape(time * batch, hidden)
        if active is not None and valid_flat is not None:
            # Same compaction in the sorted layout: only the staircase
            # of still-active rows carries nonzero gate gradients.
            stair = (np.arange(batch)[None, :] < active[:, None]).reshape(-1)
            flat_prev = flat_prev[stair]
            flat_gates = flat_gates[stair]
            flat_recur_n = flat_recur_n[stair]
        w_h_grad = np.empty(saved.w_h.shape, dtype=dtype)
        np.matmul(flat_prev.T, flat_gates[:, :two], out=w_h_grad[:, :two])
        np.matmul(flat_prev.T, flat_recur_n, out=w_h_grad[:, two:])

    if not has_projection:
        return (x_grad, w_h_grad)
    return (x_grad, w_h_grad, w_x_grad, bias_grad)


defvjp_fused("gru_sequence", _gru_sequence_fused)
