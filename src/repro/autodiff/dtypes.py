"""Precision policy for the autodiff engine (the *only* place dtypes are named).

The engine supports exactly two floating dtypes:

* ``float64`` — the **reference** path. Every equivalence contract in the
  repo (seed-vs-live benches at 1e-10, fused-vs-per-gate GRU at 1e-10,
  conv variant agreement at 1e-11, gradcheck vs central differences) is
  pinned on float64 and unchanged by the policy.
* ``float32`` — the **training fast path**: ~2× memory bandwidth on every
  GEMM in the GRU/conv/MLP hot paths. Float32 twins of the equivalence
  tests run at the bumped tolerance (:func:`equivalence_atol`).

Resolution rules (deterministic, applied everywhere):

* Explicit ``dtype=`` arguments always win.
* Arrays that are already float32/float64 keep their dtype when wrapped
  (:func:`coerce_array`; a float32 pretrained embedding matrix is *not*
  silently doubled to float64).
* Everything else — Python scalars, int arrays, lists, parameter
  initializers — takes the ambient default
  (:func:`get_default_dtype`, float64 unless changed via
  :func:`set_default_dtype` / the :class:`default_dtype` context manager).
* Mixed-dtype op inputs promote by NumPy's rules (float64 wins); the
  backward pass computes each primitive's VJP in the dtype of that
  primitive's *output* and accumulates into each parameter in the
  parameter's *own* dtype.

An AST lint test (``tests/tooling/test_no_float64_literals.py``) forbids
raw ``np.float64`` / ``np.float32`` literals anywhere else inside
``repro.autodiff``, so the policy cannot silently erode.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "canonical_dtype",
    "get_default_dtype",
    "set_default_dtype",
    "default_dtype",
    "resolve_dtype",
    "is_float_dtype",
    "coerce_array",
    "float_dtype_names",
    "equivalence_atol",
]

# The two dtypes the engine supports, keyed by canonical name.
_ALLOWED: dict[str, np.dtype] = {
    "float32": np.dtype(np.float32),
    "float64": np.dtype(np.float64),
}

# Tolerance tiers for equivalence-style tests and benches: float64 keeps
# the repo-wide 1e-10 discipline; float32 twins run at a bumped 1e-4.
_EQUIVALENCE_ATOL: dict[str, float] = {"float64": 1e-10, "float32": 1e-4}

_DEFAULT = _ALLOWED["float64"]


def float_dtype_names() -> tuple[str, ...]:
    """Canonical names accepted by the policy (for config validation)."""
    return tuple(_ALLOWED)


def canonical_dtype(dtype) -> np.dtype:
    """Validate and normalize ``dtype`` (name, ``np.dtype`` or scalar type).

    Raises ``ValueError`` for anything that is not float32/float64 — the
    engine is a two-precision system by design.
    """
    try:
        resolved = np.dtype(dtype)
    except TypeError as exc:
        raise ValueError(f"unrecognized dtype {dtype!r}") from exc
    canonical = _ALLOWED.get(resolved.name)
    if canonical is None:
        raise ValueError(
            f"dtype must be one of {float_dtype_names()}, got {resolved.name!r}"
        )
    return canonical


def get_default_dtype() -> np.dtype:
    """The ambient dtype used for scalars, int coercions and param init."""
    return _DEFAULT


def set_default_dtype(dtype) -> np.dtype:
    """Set the ambient default dtype; returns the previous one."""
    global _DEFAULT
    previous = _DEFAULT
    _DEFAULT = canonical_dtype(dtype)
    return previous


class default_dtype:
    """Context manager scoping :func:`set_default_dtype`.

    Trainers enter this with ``TrainerConfig.dtype`` so every scalar
    constant, loss coercion and freshly built parameter inside the
    training loop follows the configured precision.
    """

    def __init__(self, dtype) -> None:
        self._dtype = canonical_dtype(dtype)
        self._previous: np.dtype | None = None

    def __enter__(self) -> "default_dtype":
        self._previous = set_default_dtype(self._dtype)
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        set_default_dtype(self._previous)


def resolve_dtype(dtype=None) -> np.dtype:
    """``dtype`` if given (validated), else the ambient default."""
    if dtype is None:
        return _DEFAULT
    return canonical_dtype(dtype)


def is_float_dtype(dtype) -> bool:
    """True for the two dtypes the engine computes in."""
    return getattr(dtype, "name", None) in _ALLOWED


def coerce_array(value, dtype=None, copy: bool = False) -> np.ndarray:
    """Coerce ``value`` to an engine array under the policy.

    Explicit ``dtype`` wins; a float32/float64 array keeps its own dtype;
    anything else (ints, lists, scalars) takes the ambient default.
    """
    if isinstance(value, np.ndarray):
        if dtype is None:
            target = value.dtype if is_float_dtype(value.dtype) else _DEFAULT
        else:
            target = canonical_dtype(dtype)
        if value.dtype != target:
            return value.astype(target)
        return np.array(value, copy=True) if copy else value
    return np.array(value, dtype=resolve_dtype(dtype), copy=True)


def equivalence_atol(dtype=None) -> float:
    """Tolerance tier for equivalence tests at ``dtype`` (default: ambient)."""
    return _EQUIVALENCE_ATOL[resolve_dtype(dtype).name]
