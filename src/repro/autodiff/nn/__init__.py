"""Neural-network layer library on top of :mod:`repro.autodiff`."""

from . import init
from .layers import Conv1dSeq, Dropout, Embedding, Linear, ReLU, Tanh
from .module import Module, Sequential
from .rnn import GRU, GRUCell

__all__ = [
    "Module",
    "Sequential",
    "Linear",
    "Embedding",
    "Conv1dSeq",
    "Dropout",
    "ReLU",
    "Tanh",
    "GRU",
    "GRUCell",
    "init",
]
