"""Gated recurrent units.

The paper's NER architecture (Rodrigues & Pereira, "Deep learning from
crowds") feeds convolution features into a GRU with 50 hidden states; we
implement a standard GRU cell plus a time-loop wrapper that respects padding
masks.
"""

from __future__ import annotations

import numpy as np

from .. import functional as F
from ..tensor import Tensor
from . import init
from .module import Module

__all__ = ["GRUCell", "GRU"]


class GRUCell(Module):
    """Single-step GRU.

    Update equations (PyTorch convention)::

        r = sigmoid(x W_xr + h W_hr + b_r)
        z = sigmoid(x W_xz + h W_hz + b_z)
        n = tanh(x W_xn + r * (h W_hn) + b_n)
        h' = (1 - z) * n + z * h
    """

    def __init__(self, input_dim: int, hidden_dim: int, rng: np.random.Generator) -> None:
        super().__init__()
        self.input_dim = input_dim
        self.hidden_dim = hidden_dim

        def w_in() -> Tensor:
            return Tensor(
                init.glorot_uniform(rng, input_dim, hidden_dim), requires_grad=True
            )

        def w_rec() -> Tensor:
            return Tensor(init.orthogonal(rng, (hidden_dim, hidden_dim)), requires_grad=True)

        def b() -> Tensor:
            return Tensor(init.zeros((hidden_dim,)), requires_grad=True)

        self.w_xr, self.w_hr, self.b_r = w_in(), w_rec(), b()
        self.w_xz, self.w_hz, self.b_z = w_in(), w_rec(), b()
        self.w_xn, self.w_hn, self.b_n = w_in(), w_rec(), b()

    def forward(self, x: Tensor, h: Tensor) -> Tensor:
        """Advance one step: ``x`` is ``(B, D)``, ``h`` is ``(B, H)``."""
        r = (x @ self.w_xr + h @ self.w_hr + self.b_r).sigmoid()
        z = (x @ self.w_xz + h @ self.w_hz + self.b_z).sigmoid()
        n = (x @ self.w_xn + r * (h @ self.w_hn) + self.b_n).tanh()
        one = Tensor(np.ones_like(z.data))
        return (one - z) * n + z * h


class GRU(Module):
    """Unidirectional GRU over ``(B, T, D)`` sequences.

    Padded steps (mask 0) copy the previous hidden state forward, so the
    final states and per-step outputs are invariant to padding length.
    """

    def __init__(self, input_dim: int, hidden_dim: int, rng: np.random.Generator) -> None:
        super().__init__()
        self.cell = GRUCell(input_dim, hidden_dim, rng)
        self.hidden_dim = hidden_dim

    def forward(self, x: Tensor, mask: np.ndarray | None = None) -> Tensor:
        """Return per-step hidden states ``(B, T, H)``."""
        batch, time, _ = x.shape
        h = Tensor(np.zeros((batch, self.hidden_dim)))
        outputs: list[Tensor] = []
        for t in range(time):
            x_t = x[:, t, :]
            h_new = self.cell(x_t, h)
            if mask is not None:
                m = np.asarray(mask[:, t], dtype=np.float64)[:, None]
                h = h_new * Tensor(m) + h * Tensor(1.0 - m)
            else:
                h = h_new
            outputs.append(h)
        return F.stack(outputs, axis=1)
