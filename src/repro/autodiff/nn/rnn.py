"""Gated recurrent units.

The paper's NER architecture (Rodrigues & Pereira, "Deep learning from
crowds") feeds convolution features into a GRU with 50 hidden states.

:class:`GRU` is the production implementation and is *fused*: the three
per-gate input matrices live in one ``(D, 3H)`` block and the three
recurrent matrices in one ``(H, 3H)`` block, and the whole layer —
whole-sequence input projection plus the packed time loop — runs as a
*single* tape node (:func:`repro.autodiff.functional.gru_sequence`),
versus ~12 nodes per timestep for the per-gate loop. (The finer-grained
``gru_step``/``unbind`` ops exist as tested building blocks but are not on
the production path.) Padding semantics are unchanged: masked steps copy
the previous hidden state forward exactly as the per-gate loop's
``m * h' + (1 - m) * h`` arithmetic did, so outputs are invariant to
padding length bit-for-bit with the reference.

:class:`GRUCell` is the original per-gate single-step cell. It is kept as
the executable specification: the fused path is validated against it in
``tests/autodiff/test_fused_gru.py`` (outputs and gradients, with and
without masks) and benchmarked against it in
``benchmarks/bench_hotpaths.py``. Given the same RNG, ``GRU`` and
``GRUCell`` draw identical per-gate weight blocks in the same order, so a
same-seed pair is parameter-for-parameter comparable.
"""

from __future__ import annotations

import numpy as np

from .. import functional as F
from ..tensor import Tensor
from . import init
from .module import Module

__all__ = ["GRUCell", "GRU", "gru_reference_forward"]


class GRUCell(Module):
    """Single-step GRU (per-gate reference implementation).

    Update equations (PyTorch convention)::

        r = sigmoid(x W_xr + h W_hr + b_r)
        z = sigmoid(x W_xz + h W_hz + b_z)
        n = tanh(x W_xn + r * (h W_hn) + b_n)
        h' = (1 - z) * n + z * h
    """

    def __init__(
        self, input_dim: int, hidden_dim: int, rng: np.random.Generator, dtype=None
    ) -> None:
        super().__init__()
        self.input_dim = input_dim
        self.hidden_dim = hidden_dim

        def w_in() -> Tensor:
            return Tensor(
                init.glorot_uniform(rng, input_dim, hidden_dim, dtype=dtype),
                requires_grad=True,
            )

        def w_rec() -> Tensor:
            return Tensor(
                init.orthogonal(rng, (hidden_dim, hidden_dim), dtype=dtype),
                requires_grad=True,
            )

        def b() -> Tensor:
            return Tensor(init.zeros((hidden_dim,), dtype=dtype), requires_grad=True)

        self.w_xr, self.w_hr, self.b_r = w_in(), w_rec(), b()
        self.w_xz, self.w_hz, self.b_z = w_in(), w_rec(), b()
        self.w_xn, self.w_hn, self.b_n = w_in(), w_rec(), b()

    def forward(self, x: Tensor, h: Tensor) -> Tensor:
        """Advance one step: ``x`` is ``(B, D)``, ``h`` is ``(B, H)``."""
        r = (x @ self.w_xr + h @ self.w_hr + self.b_r).sigmoid()
        z = (x @ self.w_xz + h @ self.w_hz + self.b_z).sigmoid()
        n = (x @ self.w_xn + r * (h @ self.w_hn) + self.b_n).tanh()
        one = Tensor(np.ones_like(z.data))
        return (one - z) * n + z * h


def gru_reference_forward(cell: GRUCell, x: Tensor, mask: np.ndarray | None = None) -> Tensor:
    """Pre-fusion GRU time loop over a :class:`GRUCell`.

    This is the original (element-at-a-time) implementation, kept verbatim
    as the semantic reference for equivalence tests and as the "before"
    side of the GRU microbenchmark.
    """
    batch, time, _ = x.shape
    h = Tensor(np.zeros((batch, cell.hidden_dim), dtype=cell.w_hr.data.dtype))
    outputs: list[Tensor] = []
    for t in range(time):
        x_t = x[:, t, :]
        h_new = cell(x_t, h)
        if mask is not None:
            m = np.asarray(mask[:, t], dtype=h_new.data.dtype)[:, None]
            h = h_new * Tensor(m) + h * Tensor(1.0 - m)
        else:
            h = h_new
        outputs.append(h)
    return F.stack(outputs, axis=1)


class GRU(Module):
    """Unidirectional fused GRU over ``(B, T, D)`` sequences.

    Parameters are three fused tensors: ``w_x`` ``(D, 3H)``, ``w_h``
    ``(H, 3H)`` and ``bias`` ``(3H,)``, with gate order ``[r | z | n]``.
    Initialization draws the per-gate blocks in the same order and from the
    same distributions as :class:`GRUCell` (Glorot for input blocks,
    orthogonal for recurrent blocks), so a same-seed ``GRU`` and
    ``GRUCell`` hold identical weights.

    Padded steps (mask 0) copy the previous hidden state forward, so the
    final states and per-step outputs are invariant to padding length.
    """

    def __init__(
        self, input_dim: int, hidden_dim: int, rng: np.random.Generator, dtype=None
    ) -> None:
        super().__init__()
        self.input_dim = input_dim
        self.hidden_dim = hidden_dim
        w_x_blocks: list[np.ndarray] = []
        w_h_blocks: list[np.ndarray] = []
        for _ in range(3):  # gate order r, z, n — matches GRUCell's draws
            w_x_blocks.append(init.glorot_uniform(rng, input_dim, hidden_dim, dtype=dtype))
            w_h_blocks.append(init.orthogonal(rng, (hidden_dim, hidden_dim), dtype=dtype))
        self.w_x = Tensor(np.concatenate(w_x_blocks, axis=1), requires_grad=True, name="gru.w_x")
        self.w_h = Tensor(np.concatenate(w_h_blocks, axis=1), requires_grad=True, name="gru.w_h")
        self.bias = Tensor(
            init.zeros((3 * hidden_dim,), dtype=dtype), requires_grad=True, name="gru.bias"
        )

    def gate_cell(self) -> GRUCell:
        """Build a :class:`GRUCell` holding copies of this GRU's weights.

        Used by equivalence tests and the benchmark harness to run the
        per-gate reference computation with identical parameters.
        """
        H = self.hidden_dim
        cell = GRUCell(self.input_dim, H, np.random.default_rng(0))
        for index, gate in enumerate("rzn"):
            getattr(cell, f"w_x{gate}").data[...] = self.w_x.data[:, index * H : (index + 1) * H]
            getattr(cell, f"w_h{gate}").data[...] = self.w_h.data[:, index * H : (index + 1) * H]
            getattr(cell, f"b_{gate}").data[...] = self.bias.data[index * H : (index + 1) * H]
        return cell

    def forward(self, x: Tensor, mask: np.ndarray | None = None) -> Tensor:
        """Return per-step hidden states ``(B, T, H)``."""
        batch, _, _ = x.shape
        # The entire layer — whole-sequence input projection plus the fused
        # packed time loop — is a single tape node; see gru_sequence.
        h0 = np.zeros((batch, self.hidden_dim), dtype=self.w_h.data.dtype)
        return F.gru_sequence(x, h0, self.w_h, mask=mask, w_x=self.w_x, bias=self.bias)
