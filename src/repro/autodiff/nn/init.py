"""Weight initializers.

All initializers take an explicit ``numpy.random.Generator`` so model
construction is reproducible (the paper averages 30-50 seeded runs; our
benches average several seeded runs the same way).

Each initializer accepts an optional ``dtype`` and otherwise follows the
ambient precision policy (:mod:`repro.autodiff.dtypes`). The random draws
themselves always happen at the generator's native precision and are cast
afterwards, so a float32 parameter holds exactly the rounded values of its
float64 twin (same seed → same draws → comparable models across dtypes).
"""

from __future__ import annotations

import numpy as np

from ..dtypes import resolve_dtype

__all__ = ["glorot_uniform", "glorot_normal", "uniform", "normal", "orthogonal", "zeros"]


def glorot_uniform(
    rng: np.random.Generator,
    fan_in: int,
    fan_out: int,
    shape: tuple[int, ...] | None = None,
    dtype=None,
) -> np.ndarray:
    """Glorot/Xavier uniform: U(-a, a) with a = sqrt(6 / (fan_in + fan_out))."""
    bound = np.sqrt(6.0 / (fan_in + fan_out))
    if shape is None:
        shape = (fan_in, fan_out)
    return rng.uniform(-bound, bound, size=shape).astype(resolve_dtype(dtype), copy=False)


def glorot_normal(
    rng: np.random.Generator,
    fan_in: int,
    fan_out: int,
    shape: tuple[int, ...] | None = None,
    dtype=None,
) -> np.ndarray:
    """Glorot/Xavier normal: N(0, 2 / (fan_in + fan_out))."""
    std = np.sqrt(2.0 / (fan_in + fan_out))
    if shape is None:
        shape = (fan_in, fan_out)
    return rng.normal(0.0, std, size=shape).astype(resolve_dtype(dtype), copy=False)


def uniform(
    rng: np.random.Generator,
    shape: tuple[int, ...],
    low: float = -0.05,
    high: float = 0.05,
    dtype=None,
) -> np.ndarray:
    """Plain uniform initializer."""
    return rng.uniform(low, high, size=shape).astype(resolve_dtype(dtype), copy=False)


def normal(
    rng: np.random.Generator,
    shape: tuple[int, ...],
    std: float = 0.05,
    dtype=None,
) -> np.ndarray:
    """Plain Gaussian initializer."""
    return rng.normal(0.0, std, size=shape).astype(resolve_dtype(dtype), copy=False)


def orthogonal(rng: np.random.Generator, shape: tuple[int, int], dtype=None) -> np.ndarray:
    """Orthogonal initializer (used for GRU recurrent weights)."""
    rows, cols = shape
    flat = rng.normal(0.0, 1.0, size=(max(rows, cols), min(rows, cols)))
    q, _ = np.linalg.qr(flat)
    q = q[:rows, :cols] if q.shape[0] >= rows else q.T[:rows, :cols]
    return np.ascontiguousarray(q, dtype=resolve_dtype(dtype))


def zeros(shape: tuple[int, ...], dtype=None) -> np.ndarray:
    """All-zeros initializer (biases)."""
    return np.zeros(shape, dtype=resolve_dtype(dtype))
