"""Module base class: parameter registration, train/eval mode, state dicts."""

from __future__ import annotations

from typing import Iterator

import numpy as np

from ..tensor import Tensor

__all__ = ["Module", "Sequential"]


class Module:
    """Base class for layers and models.

    Child modules and parameters are discovered by scanning instance
    attributes (including inside lists/tuples), mirroring the convenience of
    ``torch.nn.Module`` without metaclass tricks.
    """

    def __init__(self) -> None:
        self.training = True

    # ------------------------------------------------------------------ #
    # Traversal
    # ------------------------------------------------------------------ #
    def named_parameters(self, prefix: str = "") -> Iterator[tuple[str, Tensor]]:
        """Yield ``(dotted_name, tensor)`` for every trainable parameter."""
        for name, value in vars(self).items():
            if name == "training":
                continue
            path = f"{prefix}{name}"
            yield from self._walk(path, value)

    def _walk(self, path: str, value) -> Iterator[tuple[str, Tensor]]:
        if isinstance(value, Tensor):
            if value.requires_grad:
                yield path, value
        elif isinstance(value, Module):
            yield from value.named_parameters(prefix=f"{path}.")
        elif isinstance(value, (list, tuple)):
            for i, item in enumerate(value):
                yield from self._walk(f"{path}.{i}", item)

    def parameters(self) -> list[Tensor]:
        """Return all trainable parameters, depth-first."""
        return [tensor for _, tensor in self.named_parameters()]

    def modules(self) -> Iterator["Module"]:
        """Yield this module and all descendants."""
        yield self
        for value in vars(self).values():
            if isinstance(value, Module):
                yield from value.modules()
            elif isinstance(value, (list, tuple)):
                for item in value:
                    if isinstance(item, Module):
                        yield from item.modules()

    # ------------------------------------------------------------------ #
    # Modes and gradients
    # ------------------------------------------------------------------ #
    def train(self) -> "Module":
        """Switch this module tree to training mode (enables dropout)."""
        for module in self.modules():
            module.training = True
        return self

    def eval(self) -> "Module":
        """Switch this module tree to evaluation mode (disables dropout)."""
        for module in self.modules():
            module.training = False
        return self

    def zero_grad(self) -> None:
        """Clear gradients of every parameter."""
        for parameter in self.parameters():
            parameter.zero_grad()

    def num_parameters(self) -> int:
        """Total number of scalar trainable parameters."""
        return sum(parameter.size for parameter in self.parameters())

    # ------------------------------------------------------------------ #
    # Serialization
    # ------------------------------------------------------------------ #
    def state_dict(self) -> dict[str, np.ndarray]:
        """Return a name → array snapshot (copies) of all parameters."""
        return {name: tensor.data.copy() for name, tensor in self.named_parameters()}

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        """Load parameter values saved by :meth:`state_dict`."""
        own = dict(self.named_parameters())
        missing = set(own) - set(state)
        unexpected = set(state) - set(own)
        if missing or unexpected:
            raise KeyError(
                f"state dict mismatch; missing={sorted(missing)}, "
                f"unexpected={sorted(unexpected)}"
            )
        for name, tensor in own.items():
            if tensor.data.shape != state[name].shape:
                raise ValueError(
                    f"shape mismatch for {name!r}: "
                    f"{tensor.data.shape} vs {state[name].shape}"
                )
            tensor.data[...] = state[name]

    # ------------------------------------------------------------------ #
    # Call protocol
    # ------------------------------------------------------------------ #
    def forward(self, *args, **kwargs):
        raise NotImplementedError

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)


class Sequential(Module):
    """Apply modules in order; each must be unary."""

    def __init__(self, *layers: Module) -> None:
        super().__init__()
        self.layers = list(layers)

    def forward(self, x):
        for layer in self.layers:
            x = layer(x)
        return x
