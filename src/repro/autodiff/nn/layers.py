"""Core layers: Linear, Embedding, Conv1d (sequence), Dropout, activations."""

from __future__ import annotations

import numpy as np

from .. import functional as F
from ..dtypes import coerce_array
from ..tensor import Tensor
from . import init
from .module import Module

__all__ = ["Linear", "Embedding", "Conv1dSeq", "Dropout", "ReLU", "Tanh"]


class Linear(Module):
    """Fully-connected layer ``y = x W + b``.

    Parameters
    ----------
    in_features, out_features:
        Input/output width.
    rng:
        Generator used for Glorot-uniform weight init.
    bias:
        Whether to add a bias term.
    dtype:
        Optional parameter dtype; defaults to the ambient precision policy.
    """

    def __init__(
        self,
        in_features: int,
        out_features: int,
        rng: np.random.Generator,
        bias: bool = True,
        dtype=None,
    ) -> None:
        super().__init__()
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Tensor(
            init.glorot_uniform(rng, in_features, out_features, dtype=dtype),
            requires_grad=True,
            name="linear.weight",
        )
        self.bias = (
            Tensor(init.zeros((out_features,), dtype=dtype), requires_grad=True, name="linear.bias")
            if bias
            else None
        )

    def forward(self, x: Tensor) -> Tensor:
        out = x @ self.weight
        if self.bias is not None:
            out = out + self.bias
        return out


class Embedding(Module):
    """Word-vector lookup table.

    The paper's Kim-CNN uses the "static" variant (pre-trained vectors kept
    frozen); pass ``trainable=False`` plus a ``pretrained`` matrix for that.

    Dtype resolution follows the policy: an explicit ``dtype`` wins, a
    float32/float64 ``pretrained`` matrix keeps its own dtype (it is *not*
    silently doubled to float64), and otherwise the ambient default
    applies.
    """

    def __init__(
        self,
        vocab_size: int,
        dim: int,
        rng: np.random.Generator | None = None,
        pretrained: np.ndarray | None = None,
        trainable: bool = True,
        dtype=None,
    ) -> None:
        super().__init__()
        if pretrained is not None:
            if pretrained.shape != (vocab_size, dim):
                raise ValueError(
                    f"pretrained shape {pretrained.shape} != ({vocab_size}, {dim})"
                )
            data = coerce_array(pretrained, dtype=dtype, copy=True)
        else:
            if rng is None:
                raise ValueError("rng is required when no pretrained matrix is given")
            data = init.uniform(rng, (vocab_size, dim), -0.25, 0.25, dtype=dtype)
        self.weight = Tensor(data, requires_grad=trainable, name="embedding.weight")
        self.vocab_size = vocab_size
        self.dim = dim

    def forward(self, indices: np.ndarray) -> Tensor:
        return F.embedding(self.weight, indices)


class Conv1dSeq(Module):
    """1-D convolution over the time axis of ``(B, T, D)`` sequences.

    ``variant`` selects the :func:`~repro.autodiff.functional.conv1d_seq`
    execution path (``"auto"``/``"im2col"``/``"width_loop"``); the default
    lets the functional layer pick by window-buffer size.
    """

    def __init__(
        self,
        in_dim: int,
        out_channels: int,
        width: int,
        rng: np.random.Generator,
        pad: str = "valid",
        variant: str = "auto",
        dtype=None,
    ) -> None:
        super().__init__()
        if variant not in F.CONV1D_VARIANTS:
            raise ValueError(f"variant must be one of {F.CONV1D_VARIANTS}, got {variant!r}")
        self.width = width
        self.pad = pad
        self.variant = variant
        fan_in = width * in_dim
        self.weight = Tensor(
            init.glorot_uniform(rng, fan_in, out_channels, dtype=dtype),
            requires_grad=True,
            name=f"conv{width}.weight",
        )
        self.bias = Tensor(
            init.zeros((out_channels,), dtype=dtype), requires_grad=True, name=f"conv{width}.bias"
        )

    def forward(self, x: Tensor) -> Tensor:
        return F.conv1d_seq(
            x, self.weight, self.bias, self.width, pad=self.pad, variant=self.variant
        )


class Dropout(Module):
    """Inverted dropout layer with an explicit RNG (reproducible runs)."""

    def __init__(self, rate: float, rng: np.random.Generator) -> None:
        super().__init__()
        if not 0.0 <= rate < 1.0:
            raise ValueError(f"dropout rate must be in [0, 1), got {rate}")
        self.rate = rate
        self._rng = rng

    def forward(self, x: Tensor) -> Tensor:
        return F.dropout(x, self.rate, self._rng, self.training)


class ReLU(Module):
    """Elementwise rectifier."""

    def forward(self, x: Tensor) -> Tensor:
        return x.relu()


class Tanh(Module):
    """Elementwise hyperbolic tangent."""

    def forward(self, x: Tensor) -> Tensor:
        return x.tanh()
