"""The contract-lint engine: single-parse AST analysis with a rule registry.

Eight PRs of growth produced contracts the test suite cannot see directly:
only :mod:`repro.autodiff.dtypes` may name a dtype, optional numeric config
is guarded with ``is not None`` (never truthily), ``CrowdService``'s shared
registry state stays under its lock, callables crossing the executor pickle
boundary pickle by name, broad ``except`` clauses justify themselves, and
test tolerances are explicit tiers. Each rule in :mod:`repro.analysis.rules`
mechanizes one of those contracts; this module is the machinery they share.

Design, mirroring :mod:`repro.inference.registry`:

* every rule registers itself under a unique ``rule_id`` via
  :func:`register_rule` (duplicate registration raises — same contract as
  the method registry), and is resolved by :func:`get_rule` /
  :func:`available_rules`;
* each analyzed file is parsed **once** into a :class:`SourceFile`
  (AST + tokenized comments) and dispatched to every rule, so adding a
  rule costs one AST walk, not one parse;
* findings on a line can be waived inline with ``# lint: ok(rule-id)``
  (comma-separated ids allowed). A suppression that matches no finding is
  itself reported under :data:`UNUSED_SUPPRESSION_ID`, so waivers cannot
  go stale silently;
* pre-existing findings are tolerated through the committed baseline
  ratchet (:mod:`repro.analysis.baseline`), enforced by the CLI
  (``python -m repro.analysis``) and ``tests/tooling/test_analysis.py``.
"""

from __future__ import annotations

import ast
import io
import re
import time
import tokenize
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Iterable, Protocol, runtime_checkable

if TYPE_CHECKING:
    from .flow import FileFlow

__all__ = [
    "Finding",
    "SourceFile",
    "Rule",
    "register_rule",
    "get_rule",
    "available_rules",
    "registered_rules",
    "collect_files",
    "analyze_sources",
    "analyze_paths",
    "UNUSED_SUPPRESSION_ID",
    "SYNTAX_ERROR_ID",
]

# ``lint: ok(rule-a)`` / ``lint: ok(rule-a, rule-b)`` after a hash — the
# only suppression syntax; it must sit on the exact line the finding
# anchors to. (The examples here omit their own hash so this comment is
# not itself tokenized as a stale suppression.)
_SUPPRESSION_RE = re.compile(r"#\s*lint:\s*ok\(([^)]*)\)")
_RULE_ID_RE = re.compile(r"^[a-z][a-z0-9]*(-[a-z0-9]+)*$")

UNUSED_SUPPRESSION_ID = "unused-suppression"
SYNTAX_ERROR_ID = "syntax-error"


@dataclass(frozen=True, order=True)
class Finding:
    """One violation: where (repo-relative ``file:line``), which rule, why."""

    file: str
    line: int
    rule_id: str
    message: str

    def __str__(self) -> str:
        return f"{self.file}:{self.line}: [{self.rule_id}] {self.message}"


class SourceFile:
    """One parsed module: AST, raw lines, comments, and inline suppressions.

    Built once per file per analysis run; every rule receives the same
    instance, so no rule re-parses or re-tokenizes. ``rel`` is the
    repo-relative posix path — it is what rules scope on (``src/`` vs
    ``tests/``) and what findings/baselines are keyed by, so fixture tests
    can fabricate sources at any virtual location via :meth:`from_source`.
    """

    def __init__(self, rel: str, text: str, path: Path | None = None) -> None:
        self.rel = rel.replace("\\", "/")
        self.path = path
        self.text = text
        self.lines = text.splitlines()
        self.tree = ast.parse(text, filename=self.rel)
        self.comments: dict[int, str] = {}
        try:
            for token in tokenize.generate_tokens(io.StringIO(text).readline):
                if token.type == tokenize.COMMENT:
                    self.comments[token.start[0]] = token.string
        except tokenize.TokenError:
            pass  # ast.parse accepted the file; comments stay best-effort
        self._flow: "FileFlow | None" = None
        self.suppressions: dict[int, set[str]] = {}
        for lineno, comment in self.comments.items():
            match = _SUPPRESSION_RE.search(comment)
            if match:
                ids = {part.strip() for part in match.group(1).split(",") if part.strip()}
                if ids:
                    self.suppressions[lineno] = ids

    @classmethod
    def parse(cls, path: Path, root: Path) -> "SourceFile":
        path = Path(path)
        try:
            rel = str(path.resolve().relative_to(Path(root).resolve()))
        except ValueError:
            rel = str(path)
        return cls(rel, path.read_text(), path=path)

    @classmethod
    def from_source(cls, text: str, rel: str = "src/repro/_fixture.py") -> "SourceFile":
        """Build from a source string at a virtual path (rule fixtures)."""
        return cls(rel, text)

    def flow(self) -> "FileFlow":
        """Per-function dataflow facts (CFGs, borrow/publish taint,
        optional-checkedness), computed lazily on first request and cached
        — so the fixpoints run once per file no matter how many rules
        consume them, the same single-parse economics as the AST itself.
        """
        cached = self._flow
        if cached is None:
            from .flow import build_file_flow  # deferred: flow imports us

            cached = self._flow = build_file_flow(self)
        return cached

    def comment_on(self, lineno: int) -> str | None:
        return self.comments.get(lineno)

    def has_justifying_comment(self, start: int, stop: int) -> bool:
        """Any non-suppression comment on lines ``start..stop`` inclusive?

        Suppression comments are deliberately excluded: ``# lint: ok(...)``
        waives a finding through the suppression machinery (and is tracked
        for staleness there); it is not a justification that prevents the
        finding from existing.
        """
        for lineno in range(start, stop + 1):
            comment = self.comments.get(lineno)
            if comment and not _SUPPRESSION_RE.search(comment):
                return True
        return False


@runtime_checkable
class Rule(Protocol):
    """One mechanized contract.

    ``check`` receives every :class:`SourceFile` in the run (scoping on
    ``source.rel`` is the rule's job) and yields findings. Rules needing
    cross-file context (e.g. optional-field annotations declared in one
    module, guarded in another) may implement ``prepare(sources)``, called
    once per run before any ``check``.
    """

    rule_id: str
    description: str

    def check(self, source: SourceFile) -> Iterable[Finding]: ...


_REGISTRY: dict[str, Rule] = {}


def register_rule(rule: Rule, overwrite: bool = False) -> Rule:
    """Add a rule under its ``rule_id``; refuses silent redefinition."""
    rule_id = getattr(rule, "rule_id", None)
    if not rule_id or not _RULE_ID_RE.match(rule_id):
        raise ValueError(
            f"rule_id must be kebab-case ([a-z0-9-]), got {rule_id!r}"
        )
    if rule_id in (UNUSED_SUPPRESSION_ID, SYNTAX_ERROR_ID):
        raise ValueError(f"rule_id {rule_id!r} is reserved for the engine")
    if rule_id in _REGISTRY and not overwrite:
        raise ValueError(f"rule {rule_id!r} already registered")
    _REGISTRY[rule_id] = rule
    return rule


def get_rule(rule_id: str) -> Rule:
    """Resolve a registered rule; ``KeyError`` names the known ids."""
    rule = _REGISTRY.get(rule_id)
    if rule is None:
        known = ", ".join(available_rules()) or "none"
        raise KeyError(f"unknown lint rule {rule_id!r} (known: {known})")
    return rule


def available_rules() -> tuple[str, ...]:
    """Registered rule ids, in registration order."""
    return tuple(_REGISTRY)


def registered_rules() -> tuple[Rule, ...]:
    return tuple(_REGISTRY.values())


def collect_files(paths: Iterable[Path | str], root: Path) -> list[Path]:
    """Expand files/directories into a sorted, deduplicated ``*.py`` list."""
    seen: dict[Path, None] = {}
    root = Path(root)
    for raw in paths:
        path = Path(raw)
        if not path.is_absolute():
            path = root / path
        if path.is_dir():
            for module in sorted(path.rglob("*.py")):
                seen.setdefault(module.resolve(), None)
        elif path.suffix == ".py":
            seen.setdefault(path.resolve(), None)
        else:
            raise FileNotFoundError(f"not a python file or directory: {path}")
    return sorted(seen)


def analyze_sources(
    sources: Iterable[SourceFile],
    rules: Iterable[Rule] | None = None,
    timings: dict[str, float] | None = None,
) -> list[Finding]:
    """Run ``rules`` (default: the full registry) over parsed sources.

    Per file: every rule checks the same parsed tree, suppressions on the
    findings' lines consume them, and leftover suppressions for *active*
    rules — plus suppressions naming rule ids the registry has never heard
    of — come back as :data:`UNUSED_SUPPRESSION_ID` findings.

    Pass a dict as ``timings`` to accumulate per-rule wall time (seconds,
    summed across ``prepare`` and every ``check``) — the CLI's
    ``--profile`` view. Note the shared flow-fact fixpoints are charged to
    whichever rule touches a file's :meth:`SourceFile.flow` first.
    """
    sources = list(sources)
    rules = registered_rules() if rules is None else list(rules)
    active_ids = {rule.rule_id for rule in rules}

    def charge(rule_id: str, started: float) -> None:
        if timings is not None:
            timings[rule_id] = timings.get(rule_id, 0.0) + (
                time.perf_counter() - started
            )

    for rule in rules:
        prepare = getattr(rule, "prepare", None)
        if prepare is not None:
            started = time.perf_counter()
            prepare(sources)
            charge(rule.rule_id, started)

    findings: list[Finding] = []
    for source in sources:
        raw: list[Finding] = []
        for rule in rules:
            started = time.perf_counter()
            raw.extend(rule.check(source))
            charge(rule.rule_id, started)
        used: set[tuple[int, str]] = set()
        for finding in raw:
            if finding.rule_id in source.suppressions.get(finding.line, ()):
                used.add((finding.line, finding.rule_id))
            else:
                findings.append(finding)
        for lineno in sorted(source.suppressions):
            for rule_id in sorted(source.suppressions[lineno]):
                if (lineno, rule_id) in used:
                    continue
                if rule_id in active_ids:
                    reason = "matches no finding on this line — stale waiver, remove it"
                elif rule_id not in _REGISTRY:
                    reason = f"names a rule that does not exist (known: {', '.join(available_rules())})"
                else:
                    continue  # rule exists but was excluded from this run
                findings.append(
                    Finding(
                        file=source.rel,
                        line=lineno,
                        rule_id=UNUSED_SUPPRESSION_ID,
                        message=f"suppression 'lint: ok({rule_id})' {reason}",
                    )
                )
    return sorted(findings)


def analyze_paths(
    paths: Iterable[Path | str],
    root: Path | str,
    rules: Iterable[Rule] | None = None,
    timings: dict[str, float] | None = None,
) -> list[Finding]:
    """Parse every ``*.py`` under ``paths`` once and run the rules.

    Files that do not parse come back as :data:`SYNTAX_ERROR_ID` findings
    instead of aborting the run — a lint engine that dies on the file it
    should be reporting on is useless in CI.
    """
    root = Path(root)
    sources: list[SourceFile] = []
    broken: list[Finding] = []
    for path in collect_files(paths, root):
        try:
            sources.append(SourceFile.parse(path, root))
        except SyntaxError as exc:
            try:
                rel = str(path.resolve().relative_to(root.resolve()))
            except ValueError:
                rel = str(path)
            broken.append(
                Finding(
                    file=rel.replace("\\", "/"),
                    line=exc.lineno or 1,
                    rule_id=SYNTAX_ERROR_ID,
                    message=f"file does not parse: {exc.msg}",
                )
            )
    return sorted(analyze_sources(sources, rules, timings=timings) + broken)
