"""Per-function control-flow graphs over the single-parse AST.

Granularity and shape
---------------------

Nodes are **individual statements and test expressions**, not merged
basic blocks — rules anchor findings to lines, and the hand-drawn graphs
in the test suite compare edge sets by line number, so there is nothing
to gain from block merging at this scale. Node kinds:

* ``entry`` / ``exit`` — one each per function; every ``return`` and
  uncaught ``raise`` edges to ``exit``;
* ``stmt`` — one simple statement (assignment, expression, ``with``
  binding, ``for`` header, except-handler binding, ...);
* ``test`` — one *atomic* condition evaluated for truth, with out-edges
  labeled ``True`` and ``False``. Compound tests are decomposed:
  ``if a and b:`` builds a chain ``test(a) --True--> test(b)`` with both
  false edges joining the else target, so **boolean short-circuit is a
  property of the graph** — an analysis refining facts along labeled
  edges sees ``b`` evaluated only where ``a`` already held, with no
  special-casing of ``BoolOp``. ``not`` swaps the labels; ``while`` and
  ``assert`` tests decompose the same way (an assert's false edge is a
  raise edge);
* ``join`` — the synthetic entry of a ``finally`` body (a pure merge
  point; transfer functions treat it as identity).

Edge labels: ``True``/``False`` out of ``test`` nodes, ``"exc"`` for
exception edges, ``None`` for plain fall-through.

Exception and ``finally`` modeling
----------------------------------

Every node built inside a ``try`` body grows an ``"exc"`` edge to the
entry of each handler of the *nearest* enclosing ``try`` that has
handlers (any statement may raise), and handlers fall through to the
``try``'s continuation. A ``finally`` body is built once; normal
completion routes through it, and abrupt jumps (``return`` /
``continue`` / ``raise``) that cross it are routed *into* it, with the
finally's exit edging to the union of every pending jump target.
``break`` keeps its direct edge to the loop's after-frontier alongside
the finally detour. Both choices merge paths a real interpreter keeps
separate — a deliberate imprecision that only **adds** edges, which is
the sound direction for both fact layers built on top: extra paths mean
extra joins for the may-analyses (taint never missed) and extra
intersections for the must-analyses (checkedness never invented).

Nested function and class definitions are single ``stmt`` nodes (they
bind a name; their bodies get their own CFGs via
:func:`iter_functions`). Comprehension internals are likewise opaque at
graph level — :mod:`~repro.analysis.flow.facts` scans them
expression-locally instead.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Iterator

__all__ = ["CFG", "CFGNode", "Edge", "EXC", "build_cfg", "iter_functions"]

EXC = "exc"

_TRY_TYPES = (ast.Try, ast.TryStar) if hasattr(ast, "TryStar") else (ast.Try,)


@dataclass(frozen=True)
class CFGNode:
    """One graph node: ``entry``/``exit``/``stmt``/``test``/``join``."""

    index: int
    kind: str
    node: ast.AST | None = None

    @property
    def lineno(self) -> int | None:
        return getattr(self.node, "lineno", None)


@dataclass(frozen=True)
class Edge:
    src: int
    dst: int
    label: object = None  # True | False | "exc" | None


@dataclass
class CFG:
    """The graph: nodes plus successor/predecessor adjacency."""

    func: ast.AST
    nodes: list[CFGNode] = field(default_factory=list)
    succ: dict[int, list[Edge]] = field(default_factory=dict)
    pred: dict[int, list[Edge]] = field(default_factory=dict)
    entry: int = 0
    exit: int = 1

    def add_node(self, kind: str, node: ast.AST | None = None) -> int:
        index = len(self.nodes)
        self.nodes.append(CFGNode(index, kind, node))
        self.succ[index] = []
        self.pred[index] = []
        return index

    def add_edge(self, src: int, dst: int, label: object = None) -> None:
        for existing in self.succ[src]:
            if existing.dst == dst and existing.label == label:
                return
        edge = Edge(src, dst, label)
        self.succ[src].append(edge)
        self.pred[dst].append(edge)

    def edge_set(self) -> set[tuple[object, object, object]]:
        """``{(src_desc, dst_desc, label)}`` with nodes described by line
        number (``entry``/``exit`` by name) — the hand-drawn-graph test
        representation. Distinct nodes sharing a line collapse to the
        same description, which is exactly the granularity the tests
        draw at."""

        def describe(index: int) -> object:
            node = self.nodes[index]
            if node.kind in ("entry", "exit"):
                return node.kind
            return node.lineno

        return {
            (describe(edge.src), describe(edge.dst), edge.label)
            for edges in self.succ.values()
            for edge in edges
        }


# A frontier is the set of dangling out-edges still waiting for their
# destination: (node index, edge label) pairs.
Frontier = list[tuple[int, object]]


class _LoopCtx:
    __slots__ = ("head", "breaks")

    def __init__(self, head: int) -> None:
        self.head = head
        self.breaks: Frontier = []


class _TryCtx:
    """Context while building a try body: where raises go, and which
    ``finally`` an abrupt jump must route through."""

    __slots__ = ("handler_entries", "finally_entry", "pending_targets")

    def __init__(self) -> None:
        self.handler_entries: list[int] = []
        self.finally_entry: int | None = None
        self.pending_targets: set[int] = set()


class _Builder:
    def __init__(self, func: ast.AST) -> None:
        self.cfg = CFG(func)
        self.cfg.entry = self.cfg.add_node("entry")
        self.cfg.exit = self.cfg.add_node("exit")
        self.loops: list[_LoopCtx] = []
        self.tries: list[_TryCtx] = []

    # -- plumbing ------------------------------------------------------- #
    def connect(self, frontier: Frontier, dst: int) -> None:
        for src, label in frontier:
            self.cfg.add_edge(src, dst, label)

    def new_node(self, kind: str, node: ast.AST, frontier: Frontier) -> int:
        index = self.cfg.add_node(kind, node)
        self.connect(frontier, index)
        self._exc_edges(index)
        return index

    def _exc_edges(self, index: int) -> None:
        """Any statement inside a try body may raise into its handlers."""
        for ctx in reversed(self.tries):
            if ctx.handler_entries:
                for handler in ctx.handler_entries:
                    self.cfg.add_edge(index, handler, EXC)
                return  # nearest handlers catch; outer tries only see
                # what their own handler statements re-raise

    def _abrupt(self, index: int, target: int) -> None:
        """Route an abrupt jump to ``target``, diverting through the
        innermost pending ``finally`` if one exists."""
        for ctx in reversed(self.tries):
            if ctx.finally_entry is not None:
                self.cfg.add_edge(index, ctx.finally_entry)
                ctx.pending_targets.add(target)
                return
        self.cfg.add_edge(index, target)

    # -- condition decomposition ---------------------------------------- #
    def build_test(self, expr: ast.expr, frontier: Frontier) -> tuple[Frontier, Frontier]:
        """Decompose ``expr`` into a chain of atomic test nodes.

        Returns ``(true_frontier, false_frontier)`` — the dangling edges
        taken when the whole expression is truthy / falsy.
        """
        if isinstance(expr, ast.BoolOp):
            if isinstance(expr.op, ast.And):
                false_out: Frontier = []
                current = frontier
                for value in expr.values:
                    true_f, false_f = self.build_test(value, current)
                    false_out.extend(false_f)
                    current = true_f
                return current, false_out
            true_out: Frontier = []
            current = frontier
            for value in expr.values:
                true_f, false_f = self.build_test(value, current)
                true_out.extend(true_f)
                current = false_f
            return true_out, current
        if isinstance(expr, ast.UnaryOp) and isinstance(expr.op, ast.Not):
            true_f, false_f = self.build_test(expr.operand, frontier)
            return false_f, true_f
        index = self.new_node("test", expr, frontier)
        return [(index, True)], [(index, False)]

    # -- statement dispatch --------------------------------------------- #
    def build_body(self, stmts: list[ast.stmt], frontier: Frontier) -> Frontier:
        for stmt in stmts:
            frontier = self.build_stmt(stmt, frontier)
        return frontier

    def build_stmt(self, stmt: ast.stmt, frontier: Frontier) -> Frontier:
        if isinstance(stmt, ast.If):
            true_f, false_f = self.build_test(stmt.test, frontier)
            after = self.build_body(stmt.body, true_f)
            if stmt.orelse:
                after = after + self.build_body(stmt.orelse, false_f)
            else:
                after = after + false_f
            return after
        if isinstance(stmt, ast.While):
            true_f, false_f = self.build_test(stmt.test, frontier)
            head = self._chain_entry(true_f, false_f)
            ctx = _LoopCtx(head)
            self.loops.append(ctx)
            body_end = self.build_body(stmt.body, true_f)
            self.loops.pop()
            self.connect(body_end, head)
            after = self.build_body(stmt.orelse, false_f) if stmt.orelse else false_f
            return after + ctx.breaks
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            # The for header is one node: evaluate the iterable, bind the
            # target. True = another item (enter body), False = exhausted.
            head = self.new_node("stmt", stmt, frontier)
            ctx = _LoopCtx(head)
            self.loops.append(ctx)
            body_end = self.build_body(stmt.body, [(head, True)])
            self.loops.pop()
            self.connect(body_end, head)
            exhausted: Frontier = [(head, False)]
            after = self.build_body(stmt.orelse, exhausted) if stmt.orelse else exhausted
            return after + ctx.breaks
        if isinstance(stmt, _TRY_TYPES):
            return self._build_try(stmt, frontier)
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            index = self.new_node("stmt", stmt, frontier)
            return self.build_body(stmt.body, [(index, None)])
        if isinstance(stmt, ast.Return):
            index = self.new_node("stmt", stmt, frontier)
            self._abrupt(index, self.cfg.exit)
            return []
        if isinstance(stmt, ast.Break):
            index = self.new_node("stmt", stmt, frontier)
            if self.loops:
                # Direct edge to the loop's after-frontier; if a finally
                # intervenes, the detour edge exists alongside (see module
                # docs on the both-paths approximation).
                for tctx in reversed(self.tries):
                    if tctx.finally_entry is not None:
                        self.cfg.add_edge(index, tctx.finally_entry)
                        break
                self.loops[-1].breaks.append((index, None))
            return []
        if isinstance(stmt, ast.Continue):
            index = self.new_node("stmt", stmt, frontier)
            if self.loops:
                self._abrupt(index, self.loops[-1].head)
            return []
        if isinstance(stmt, ast.Raise):
            index = self.new_node("stmt", stmt, frontier)
            # new_node wired handler edges; an uncaught raise propagates
            # out of the function (through any pending finally).
            if not any(ctx.handler_entries for ctx in self.tries):
                self._abrupt(index, self.cfg.exit)
            return []
        if isinstance(stmt, ast.Assert):
            true_f, false_f = self.build_test(stmt.test, frontier)
            for src, label in false_f:  # assertion failure raises
                self.cfg.add_edge(src, self.cfg.exit, label)
            return true_f
        # Everything else — assignments, expression statements, nested
        # def/class (they bind a name; bodies analyzed separately),
        # imports, global/nonlocal, pass, delete — is one linear node.
        index = self.new_node("stmt", stmt, frontier)
        return [(index, None)]

    @staticmethod
    def _chain_entry(*frontiers: Frontier) -> int:
        """First node of a decomposed condition chain (= the loop head):
        the lowest index, since the chain was built in order."""
        return min(src for frontier in frontiers for src, _ in frontier)

    def _build_try(self, stmt: ast.Try, frontier: Frontier) -> Frontier:
        ctx = _TryCtx()
        # Handler entries must exist before the body is built so body
        # statements can grow exc edges to them.
        handler_nodes: list[tuple[ast.ExceptHandler, int]] = []
        for handler in stmt.handlers:
            index = self.cfg.add_node("stmt", handler)
            ctx.handler_entries.append(index)
            handler_nodes.append((handler, index))
        if stmt.finalbody:
            ctx.finally_entry = self.cfg.add_node("join", stmt)

        self.tries.append(ctx)
        body_end = self.build_body(stmt.body, frontier)
        self.tries.pop()

        if stmt.orelse:
            body_end = self.build_body(stmt.orelse, body_end)

        handler_ends: Frontier = []
        for handler, index in handler_nodes:
            # Handler bodies run outside the try's exc scope (a raise in a
            # handler propagates outward, not back into the same try).
            handler_ends.extend(self.build_body(handler.body, [(index, None)]))
            self._exc_edges(index)

        normal_end = body_end + handler_ends
        if ctx.finally_entry is None:
            return normal_end
        self.connect(normal_end, ctx.finally_entry)
        finally_end = self.build_body(stmt.finalbody, [(ctx.finally_entry, None)])
        for target in sorted(ctx.pending_targets):
            self.connect(finally_end, target)
        return finally_end


def build_cfg(func: ast.AST) -> CFG:
    """Build the CFG of one function (or module/lambda-free tree) body."""
    builder = _Builder(func)
    end = builder.build_body(list(getattr(func, "body", [])), [(builder.cfg.entry, None)])
    builder.connect(end, builder.cfg.exit)
    return builder.cfg


def iter_functions(tree: ast.AST) -> Iterator[ast.FunctionDef | ast.AsyncFunctionDef]:
    """Every function/method definition in the tree (nested included)."""
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node
