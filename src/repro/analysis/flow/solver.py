"""Generic forward fixpoint solver over lattice-valued dataflow facts.

The contract between solver and analysis is deliberately small, so both
fact layers in :mod:`~repro.analysis.flow.facts` (and any future one)
share the same engine:

* ``initial(cfg)`` — the state at function entry;
* ``join(old, new)`` — least upper bound of two states. ``old`` is
  ``None`` for a node not yet reached (the analysis's bottom), so
  ``join(None, s) == s``. For a may-analysis the join is a union, for a
  must-analysis an intersection — the solver does not care, it only
  requires **monotonicity**: joining can never shrink the information
  order, or the worklist would oscillate;
* ``transfer(cfg_node, state)`` — the post-state after one node;
* ``refine(cfg_node, state, label)`` — optional branch refinement along
  a labeled edge out of a ``test`` node (e.g. adding ``x`` to the
  checked set along the ``True`` edge of ``x is not None``). Default:
  the state passes through unchanged.

States must be immutable values with structural equality — the solver
decides convergence by ``==`` on the joined entry states.

Termination: with a finite lattice and monotone ``join``/``transfer``,
each node's entry state can only climb a finite chain, so the worklist
drains. A hard iteration cap (``max_passes`` sweeps over the edge set)
guards against a non-monotone client analysis; hitting it raises
:class:`FixpointDiverged` rather than looping forever — a lint engine
that hangs on one weird function is worse than one that reports it.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Protocol, runtime_checkable

from .cfg import CFG, CFGNode

__all__ = ["ForwardAnalysis", "FixpointDiverged", "solve_forward"]


class FixpointDiverged(RuntimeError):
    """The worklist failed to converge — the analysis is not monotone."""


@runtime_checkable
class ForwardAnalysis(Protocol):
    """What a client analysis supplies (see module docs)."""

    def initial(self, cfg: CFG) -> Any: ...

    def join(self, old: Any | None, new: Any) -> Any: ...

    def transfer(self, node: CFGNode, state: Any) -> Any: ...


def solve_forward(
    cfg: CFG, analysis: ForwardAnalysis, max_passes: int = 64
) -> dict[int, Any]:
    """Run ``analysis`` to fixpoint; returns entry states per node index.

    Unreachable nodes keep ``None`` (bottom) — clients collecting facts
    skip them, which is correct: code on no path cannot violate a path
    contract.
    """
    refine = getattr(analysis, "refine", None)
    entry_states: dict[int, Any] = {index: None for index in range(len(cfg.nodes))}
    entry_states[cfg.entry] = analysis.initial(cfg)
    worklist: deque[int] = deque([cfg.entry])
    queued = {cfg.entry}
    budget = max(1, max_passes) * max(1, sum(len(e) for e in cfg.succ.values()))
    steps = 0
    while worklist:
        steps += 1
        if steps > budget:
            raise FixpointDiverged(
                f"no fixpoint after {steps} edge relaxations "
                f"({len(cfg.nodes)} nodes) — non-monotone transfer/join?"
            )
        index = worklist.popleft()
        queued.discard(index)
        state = entry_states[index]
        if state is None:
            continue
        node = cfg.nodes[index]
        out = analysis.transfer(node, state)
        for edge in cfg.succ[index]:
            edge_state = out
            if refine is not None and node.kind == "test":
                edge_state = refine(node, out, edge.label)
            joined = analysis.join(entry_states[edge.dst], edge_state)
            if joined != entry_states[edge.dst]:
                entry_states[edge.dst] = joined
                if edge.dst not in queued:
                    worklist.append(edge.dst)
                    queued.add(edge.dst)
    return entry_states
