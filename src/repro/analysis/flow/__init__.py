"""repro.analysis.flow — the dataflow tier of the contract-lint engine.

PR 9's engine mechanized *syntactic* contracts (one AST walk per rule).
The contracts guarding the bit-identity and no-torn-read guarantees are
*semantic* — def-use and path-reachability properties a single walk
cannot see: "never mutate a borrowed zero-copy view", "never mutate an
object after publishing it into a snapshot", "never use an optional
field on a path no ``is not None`` check dominates". This package is the
machinery that makes those checkable:

* :mod:`~repro.analysis.flow.cfg` — a per-function control-flow graph
  over the engine's single-parse AST (statement-granular nodes, boolean
  short-circuit decomposed into condition-node chains, exception and
  ``finally`` edges);
* :mod:`~repro.analysis.flow.solver` — a generic forward worklist
  solver: any client analysis supplying ``join``/``transfer`` over a
  lattice of facts is run to fixpoint;
* :mod:`~repro.analysis.flow.facts` — the two concrete analyses the
  semantic rules consume ("borrowed"/"published" object taint with
  alias tracking, and must-"checked" optional-name facts), computed
  **once per file** via :meth:`repro.analysis.engine.SourceFile.flow`
  and shared by every rule.

Rules consuming these facts (``view-mutation``, ``publish-escape``, the
path-sensitive ``optional-guard``) plug into the existing registry /
baseline / suppression machinery unchanged — flow facts change what a
rule can *see*, not how findings are reported, waived, or ratcheted.
"""

from __future__ import annotations

from .cfg import CFG, CFGNode, build_cfg, iter_functions
from .facts import FileFlow, FunctionFlow, Mutation, TruthinessTest, build_file_flow
from .solver import ForwardAnalysis, solve_forward

__all__ = [
    "CFG",
    "CFGNode",
    "build_cfg",
    "iter_functions",
    "ForwardAnalysis",
    "solve_forward",
    "FileFlow",
    "FunctionFlow",
    "Mutation",
    "TruthinessTest",
    "build_file_flow",
]
