"""Def-use, alias, and path facts the semantic contract rules consume.

Two analyses run over every function's CFG (built once per file, shared
by all rules via :meth:`repro.analysis.engine.SourceFile.flow`):

**Object taint (may-analysis).** An abstract object is allocated per
*allocation site* (call result, container/array-building expression,
function parameter); the lattice value of a local is the frozenset of
object ids it may point to, and the join is union — classic may-point-to
over reaching definitions. Three kinds of site matter:

* **borrowed** — results of the declared borrow-returning accessors
  (:data:`BORROWING_CALLS`: the zero-copy shard/COO-view surface of the
  crowd containers — ``shards()``, ``iter_shards()``,
  ``flat_label_pairs()``, ``label_incidence()`` and its token twin,
  ``vote_counts()``) plus ``SparseLabelShard.load(..., mmap=True)``
  (a memmap: writing through it corrupts the shard *file*) and the
  declared borrowed properties (:data:`BORROWING_ATTRS`). Mutating a
  borrowed object in place breaks the PR 5/6 bit-identity contract —
  shard views alias the parent's cached COO triples, and shard files
  are immutable while handles are live.
* **published** — objects stored into an attribute marked with a
  trailing ``# published`` comment, or matching the snapshot-swap
  pattern (attribute named ``snapshot``/``*_snapshot`` — the PR 8
  ``CrowdService`` idiom ``entry.snapshot = (version, result)``).
  Publication is a *program point*, so the published set rides in the
  flow state; mutating an object on a path after its publication is a
  torn read waiting for a reader.
* **fresh** — everything else. Any ordinary call returns fresh storage
  (this is what makes ``x = x.copy()`` launder a borrow), *except* the
  declared aliasing forms (:data:`ALIASING_CALLS`: ``np.asarray``,
  ``reshape``, ``ravel``, ... return views of their input) and
  subscripting (a numpy slice aliases its base buffer), which propagate
  the source ids.

Attribute loads propagate their base's ids (a field of a tainted
object is part of it — ``shard.rows.sort()`` on a memmap writes the
shard file), but an *untainted* base contributes nothing, so two loads
of ``self._buf`` are not aliased with each other — cross-attribute
escape is the lock-discipline rule's domain — and ``.T``-style view
properties of untainted arrays are untracked. Deliberate holes, both.

**Optional checkedness (must-analysis).** The state is the set of
names/attributes known non-None on *every* path into a node ("checked",
join = intersection) plus, per local, the set of attribute names its
value may originate from (join = union) — so ``clip = config.grad_clip``
followed by ``if clip:`` is attributable to the ``grad_clip`` field
across files, which the purely syntactic PR 9 rule could not do.
Checkedness is seeded by branch refinement along the CFG's labeled
edges (``x is not None`` true-edge, ``x is None`` false-edge, a truthy
test's true-edge, ``isinstance`` true-edge) — and because the CFG
decomposes boolean short-circuit into test-node chains,
``x is not None and x`` checks the second conjunct under the first's
refinement with no special cases. Assignment kills checkedness;
assigning a non-None constant or an already-checked name restores it.

The collected products are deliberately rule-agnostic:
:class:`Mutation` events (in-place writes whose target may be borrowed
or published) and :class:`TruthinessTest` records (every expression
position evaluated for truth, with the checked/origin facts at that
point). Rules filter them against their own vocabularies, so the
fixpoints run once per function regardless of how many rules consume
them.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Iterable

from .cfg import CFG, CFGNode, build_cfg, iter_functions
from .solver import solve_forward

if TYPE_CHECKING:  # engine imports flow lazily; avoid the import cycle
    from ..engine import SourceFile

__all__ = [
    "BORROWING_CALLS",
    "BORROWING_ATTRS",
    "ALIASING_CALLS",
    "MUTATING_METHODS",
    "Mutation",
    "TruthinessTest",
    "FunctionFlow",
    "FileFlow",
    "build_file_flow",
    "describe_expr",
]

# --------------------------------------------------------------------- #
# Declared seeding vocabularies (the conventions the repo already has).
# --------------------------------------------------------------------- #

# Methods returning zero-copy views of container caches (crowd/types.py,
# crowd/sharding.py document each as read-only/borrowed).
BORROWING_CALLS = frozenset({
    "shards",
    "iter_shards",
    "flat_label_pairs",
    "label_incidence",
    "token_label_incidence",
    "vote_counts",
})

# Properties returning views of parent/cached storage.
BORROWING_ATTRS = frozenset({"observed_mask"})

# Classes whose ``.load(path, mmap=True)`` memory-maps an immutable file.
_MMAP_LOADER_TYPES = frozenset({"SparseLabelShard"})

# Calls returning views/aliases of their input rather than fresh storage
# (np.asarray of an ndarray is the same object; reshape/ravel/squeeze
# return views when they can). Everything NOT listed here is assumed to
# return fresh storage — which is what makes ``.copy()`` launder taint.
ALIASING_CALLS = frozenset({
    "asarray",
    "asanyarray",
    "ascontiguousarray",
    "atleast_1d",
    "atleast_2d",
    "reshape",
    "ravel",
    "view",
    "squeeze",
    "swapaxes",
    "transpose",
})

# Methods that mutate their receiver in place: the ndarray in-place
# surface plus the dict/list/set mutators (publish-escape watches plain
# containers too — snapshots are (version, result-dict) tuples).
MUTATING_METHODS = frozenset({
    # ndarray
    "fill", "sort", "put", "partition", "itemset", "resize",
    "setflags", "setfield", "byteswap",
    # dict / list / set
    "update", "setdefault", "pop", "popitem", "clear",
    "append", "extend", "insert", "remove", "add", "discard",
})

_PUBLISH_COMMENT_RE = re.compile(r"#\s*published\b")
_SNAPSHOT_ATTR_RE = re.compile(r"(^|_)snapshot$")

_EMPTY: frozenset = frozenset()


def describe_expr(expr: ast.expr) -> str:
    """Compact human-readable form of a mutation target for messages."""
    if isinstance(expr, ast.Name):
        return expr.id
    if isinstance(expr, ast.Attribute):
        return f"{describe_expr(expr.value)}.{expr.attr}"
    if isinstance(expr, ast.Subscript):
        return f"{describe_expr(expr.value)}[...]"
    if isinstance(expr, ast.Call):
        return f"{describe_expr(expr.func)}(...)"
    return "<expr>"


# --------------------------------------------------------------------- #
# Collected products.
# --------------------------------------------------------------------- #


@dataclass(frozen=True)
class Mutation:
    """One in-place write whose target may be borrowed and/or published."""

    lineno: int
    target: str  # described mutated expression, e.g. "rows" / "pairs[...]"
    kind: str  # "subscript store" | "aug-assign" | "mutating call .x()" | "out= argument"
    borrowed_from: tuple[str, ...]  # borrow-site descriptions, () if none
    published_at: tuple[int, ...]  # publish-site line numbers, () if none


@dataclass(frozen=True)
class TruthinessTest:
    """One expression position evaluated for truth, with path facts."""

    lineno: int
    expr: ast.expr  # the tested Name or Attribute
    checked: frozenset[str]  # must-non-None keys at this point
    origins: frozenset[str]  # field names a tested Name may originate from


@dataclass
class FunctionFlow:
    """Per-function facts: the CFG plus both analyses' products."""

    func: ast.AST
    cfg: CFG
    mutations: list[Mutation]
    tests: list[TruthinessTest]


@dataclass
class FileFlow:
    functions: list[FunctionFlow] = field(default_factory=list)

    def mutations(self) -> Iterable[Mutation]:
        for fn in self.functions:
            yield from fn.mutations

    def tests(self) -> Iterable[TruthinessTest]:
        for fn in self.functions:
            yield from fn.tests


# --------------------------------------------------------------------- #
# Taint analysis: borrowed / published object ids with alias tracking.
# --------------------------------------------------------------------- #


@dataclass
class _TaintState:
    env: dict[str, frozenset]  # name -> may-point-to object ids
    published: frozenset  # object ids published at or before this point

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, _TaintState)
            and self.env == other.env
            and self.published == other.published
        )


class _TaintAnalysis:
    """May-point-to + borrow/publish taint (see module docs)."""

    def __init__(self, source: "SourceFile") -> None:
        self.source = source
        self._site_ids: dict[int, int] = {}  # id(ast node) -> object id
        self._next_id = 0
        self.borrowed: dict[int, str] = {}  # object id -> borrow description
        self.publish_sites: dict[int, int] = {}  # object id -> publish lineno

    # -- sites ---------------------------------------------------------- #
    def _site(self, node: ast.AST) -> int:
        """Stable object id per allocation site (stable across the
        repeated transfer runs of the fixpoint iteration)."""
        key = id(node)
        oid = self._site_ids.get(key)
        if oid is None:
            oid = self._next_id
            self._next_id += 1
            self._site_ids[key] = oid
        return oid

    def _borrow_site(self, node: ast.AST, description: str) -> frozenset:
        oid = self._site(node)
        self.borrowed.setdefault(oid, description)
        return frozenset({oid})

    # -- expression evaluation ------------------------------------------ #
    def eval(self, expr: ast.expr, env: dict[str, frozenset]) -> frozenset:
        if isinstance(expr, ast.Name):
            return env.get(expr.id, _EMPTY)
        if isinstance(expr, ast.Starred):
            return self.eval(expr.value, env)
        if isinstance(expr, ast.Tuple):
            out = _EMPTY
            for elt in expr.elts:
                out |= self.eval(elt, env)
            return out
        if isinstance(expr, (ast.List, ast.Set, ast.Dict)):
            # A fresh mutable container that may also hold its elements'
            # objects — publishing a list publishes what it contains.
            out = frozenset({self._site(expr)})
            elts = expr.values if isinstance(expr, ast.Dict) else expr.elts
            for elt in elts:
                if elt is not None:
                    out |= self.eval(elt, env)
            return out
        if isinstance(expr, ast.Subscript):
            return self.eval(expr.value, env)  # numpy slices alias the base
        if isinstance(expr, ast.IfExp):
            return self.eval(expr.body, env) | self.eval(expr.orelse, env)
        if isinstance(expr, ast.BoolOp):
            out = _EMPTY  # `x or default` evaluates to one of the operands
            for value in expr.values:
                out |= self.eval(value, env)
            return out
        if isinstance(expr, ast.NamedExpr):
            return self.eval(expr.value, env)
        if isinstance(expr, ast.Attribute):
            if expr.attr in BORROWING_ATTRS:
                return self._borrow_site(expr, f".{expr.attr} view")
            # A field of a tainted object is part of it: `shard.rows.sort()`
            # on a memmapped shard writes the shard file. Untainted bases
            # (locals with no ids, bare `self`) stay id-free.
            return self.eval(expr.value, env)
        if isinstance(expr, ast.Call):
            return self._eval_call(expr, env)
        if isinstance(expr, (ast.BinOp, ast.UnaryOp)):
            return frozenset({self._site(expr)})  # fresh array result
        return _EMPTY  # constants, comparisons, f-strings, comprehensions

    def _eval_call(self, call: ast.Call, env: dict[str, frozenset]) -> frozenset:
        func = call.func
        if isinstance(func, ast.Attribute):
            if func.attr in BORROWING_CALLS:
                return self._borrow_site(call, f"{func.attr}()")
            if (
                func.attr == "load"
                and isinstance(func.value, ast.Name)
                and func.value.id in _MMAP_LOADER_TYPES
            ):
                mmap_kw = next(
                    (kw for kw in call.keywords if kw.arg == "mmap"), None
                )
                explicit_no_mmap = (
                    mmap_kw is not None
                    and isinstance(mmap_kw.value, ast.Constant)
                    and mmap_kw.value.value is False
                )
                if not explicit_no_mmap:  # mmap=True is the default
                    return self._borrow_site(
                        call, f"{func.value.id}.load(mmap=True)"
                    )
                return frozenset({self._site(call)})
            if func.attr in ALIASING_CALLS:
                out = self.eval(func.value, env)  # x.reshape(...) aliases x
                for arg in call.args:  # np.asarray(x) aliases x
                    out |= self.eval(arg, env)
                return out
        # Any other call returns fresh storage — .copy()/.astype()/
        # to_matrix()/np.array() all launder taint through this arm.
        return frozenset({self._site(call)})

    # -- solver interface ----------------------------------------------- #
    def initial(self, cfg: CFG) -> _TaintState:
        env: dict[str, frozenset] = {}
        arguments = getattr(cfg.func, "args", None)
        if arguments is not None:
            for arg in (
                list(arguments.posonlyargs)
                + list(arguments.args)
                + list(arguments.kwonlyargs)
                + [a for a in (arguments.vararg, arguments.kwarg) if a]
            ):
                env[arg.arg] = frozenset({self._site(arg)})
        return _TaintState(env, _EMPTY)

    def join(self, old: _TaintState | None, new: _TaintState) -> _TaintState:
        if old is None:
            return new
        env = dict(old.env)
        for name, ids in new.env.items():
            merged = env.get(name, _EMPTY) | ids
            if merged != env.get(name):
                env[name] = merged
        published = old.published | new.published
        if env == old.env and published == old.published:
            return old
        return _TaintState(env, published)

    def transfer(self, node: CFGNode, state: _TaintState) -> _TaintState:
        if node.kind != "stmt":
            return state
        stmt = node.node
        env = state.env
        published = state.published

        def bind(target: ast.expr, ids: frozenset) -> None:
            nonlocal env
            if isinstance(target, ast.Name):
                env = dict(env)
                env[target.id] = ids
            elif isinstance(target, (ast.Tuple, ast.List)):
                for elt in target.elts:
                    bind(elt, ids)
            elif isinstance(target, ast.Starred):
                bind(target.value, ids)

        if isinstance(stmt, (ast.Assign, ast.AnnAssign)):
            value = stmt.value
            if value is not None:
                ids = self.eval(value, env)
                targets = stmt.targets if isinstance(stmt, ast.Assign) else [stmt.target]
                for target in targets:
                    if self._is_publish_target(target, stmt):
                        for oid in ids:
                            self.publish_sites.setdefault(oid, stmt.lineno)
                        published = published | ids
                    bind(target, ids)
        elif isinstance(stmt, ast.AugAssign):
            pass  # in-place: the target keeps its ids
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            bind(stmt.target, self.eval(stmt.iter, env))
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                if item.optional_vars is not None:
                    bind(item.optional_vars, self.eval(item.context_expr, env))
        elif isinstance(stmt, ast.ExceptHandler):
            if stmt.name:
                env = dict(env)
                env[stmt.name] = _EMPTY
        elif isinstance(stmt, ast.Delete):
            for target in stmt.targets:
                if isinstance(target, ast.Name) and target.id in env:
                    env = dict(env)
                    del env[target.id]
        if env is state.env and published is state.published:
            return state
        return _TaintState(env, published)

    def _is_publish_target(self, target: ast.expr, stmt: ast.stmt) -> bool:
        comment_marked = any(
            (comment := self.source.comments.get(line)) is not None
            and _PUBLISH_COMMENT_RE.search(comment)
            for line in range(stmt.lineno, (stmt.end_lineno or stmt.lineno) + 1)
        )
        if isinstance(target, ast.Attribute):
            return comment_marked or bool(_SNAPSHOT_ATTR_RE.search(target.attr))
        if isinstance(target, ast.Subscript):
            return comment_marked  # store into a `# published` container
        return False

    # -- mutation collection -------------------------------------------- #
    def collect(self, cfg: CFG, entry_states: dict[int, object]) -> list[Mutation]:
        mutations: list[Mutation] = []
        for node in cfg.nodes:
            state = entry_states.get(node.index)
            if state is None:
                continue  # unreachable — no path, no path contract
            region = _node_expressions(node)
            if region is None:
                continue
            record = lambda base, kind, lineno: self._record(  # noqa: E731
                base, kind, lineno, state, mutations
            )
            stmt = node.node
            if isinstance(stmt, ast.Assign):
                for target in stmt.targets:
                    self._collect_store_targets(target, record)
            elif isinstance(stmt, ast.AugAssign):
                target = stmt.target
                if isinstance(target, ast.Name):
                    record(target, "aug-assign", target.lineno)
                elif isinstance(target, ast.Subscript):
                    record(target.value, "aug-assign", target.lineno)
            for sub in region:
                for call in ast.walk(sub):
                    if not isinstance(call, ast.Call):
                        continue
                    for kw in call.keywords:
                        if kw.arg == "out":
                            for name in self._out_names(kw.value):
                                record(name, "out= argument", call.lineno)
                    func = call.func
                    if (
                        isinstance(func, ast.Attribute)
                        and func.attr in MUTATING_METHODS
                    ):
                        record(
                            func.value, f"mutating call .{func.attr}()", call.lineno
                        )
        return mutations

    @staticmethod
    def _collect_store_targets(
        target: ast.expr, record: Callable[[ast.expr, str, int], None]
    ) -> None:
        if isinstance(target, ast.Subscript):
            record(target.value, "subscript store", target.lineno)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                _TaintAnalysis._collect_store_targets(elt, record)

    @staticmethod
    def _out_names(value: ast.expr) -> list[ast.expr]:
        if isinstance(value, ast.Tuple):
            return list(value.elts)
        return [value]

    def _record(
        self,
        base: ast.expr,
        kind: str,
        lineno: int,
        state: _TaintState,
        mutations: list[Mutation],
    ) -> None:
        ids = self.eval(base, state.env)
        if not ids:
            return
        borrowed = tuple(
            sorted({self.borrowed[oid] for oid in ids if oid in self.borrowed})
        )
        published = tuple(
            sorted(
                {
                    self.publish_sites[oid]
                    for oid in ids & state.published
                    if oid in self.publish_sites
                }
            )
        )
        if borrowed or published:
            mutations.append(
                Mutation(lineno, describe_expr(base), kind, borrowed, published)
            )


_TRY_STMT_TYPES = (ast.Try, ast.TryStar) if hasattr(ast, "TryStar") else (ast.Try,)


def _node_expressions(node: CFGNode) -> list[ast.expr] | None:
    """The expressions a CFG node itself evaluates (None: nothing).

    Compound statements contribute only their *header* expressions — their
    bodies are separate CFG nodes, and scanning them here would double-
    count. Nested function/class definitions are opaque (their bodies get
    their own CFGs and scopes).
    """
    if node.kind == "test":
        return [node.node]
    if node.kind != "stmt":
        return None
    stmt = node.node
    if isinstance(stmt, (ast.For, ast.AsyncFor)):
        return [stmt.iter]
    if isinstance(stmt, (ast.With, ast.AsyncWith)):
        return [item.context_expr for item in stmt.items]
    if isinstance(
        stmt,
        (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef, ast.ExceptHandler),
    ):
        return None
    if isinstance(stmt, _TRY_STMT_TYPES):
        return None  # the synthetic finally join node
    return [
        child for child in ast.iter_child_nodes(stmt) if isinstance(child, ast.expr)
    ]


# --------------------------------------------------------------------- #
# Optional checkedness: must-non-None keys + value origins.
# --------------------------------------------------------------------- #


@dataclass
class _OptionalState:
    checked: frozenset[str]  # keys non-None on every path here
    origins: dict[str, frozenset[str]]  # local -> field names it may hold

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, _OptionalState)
            and self.checked == other.checked
            and self.origins == other.origins
        )


def _key(expr: ast.expr) -> str | None:
    """Checkedness key: bare name, or ``.attr`` for any attribute access
    (objectless, matching the syntactic rule's name-level matching)."""
    if isinstance(expr, ast.Name):
        return expr.id
    if isinstance(expr, ast.Attribute):
        return f".{expr.attr}"
    return None


class _OptionalAnalysis:
    """Must-checked non-None facts with branch refinement (see module docs)."""

    def initial(self, cfg: CFG) -> _OptionalState:
        return _OptionalState(_EMPTY, {})

    def join(self, old: _OptionalState | None, new: _OptionalState) -> _OptionalState:
        if old is None:
            return new
        checked = old.checked & new.checked
        origins = dict(old.origins)
        for name, fields in new.origins.items():
            merged = origins.get(name, _EMPTY) | fields
            if merged != origins.get(name):
                origins[name] = merged
        if checked == old.checked and origins == old.origins:
            return old
        return _OptionalState(checked, origins)

    # -- assumption refinement ------------------------------------------ #
    def refine(self, node: CFGNode, state: _OptionalState, label: object) -> _OptionalState:
        if label not in (True, False):
            return state
        return self._assume(node.node, bool(label), state)

    def _assume(
        self, expr: ast.expr, truth: bool, state: _OptionalState
    ) -> _OptionalState:
        if isinstance(expr, ast.UnaryOp) and isinstance(expr.op, ast.Not):
            return self._assume(expr.operand, not truth, state)
        if isinstance(expr, ast.BoolOp):
            # Embedded bool-ops (inside `x = a or b` scans): conjunct facts
            # hold when an `and` is true / an `or` is false.
            if (isinstance(expr.op, ast.And) and truth) or (
                isinstance(expr.op, ast.Or) and not truth
            ):
                for value in expr.values:
                    state = self._assume(value, truth, state)
            return state
        if isinstance(expr, ast.Compare) and len(expr.ops) == 1:
            left, op, right = expr.left, expr.ops[0], expr.comparators[0]
            is_none = isinstance(right, ast.Constant) and right.value is None
            if is_none:
                key = _key(left)
                if key is not None:
                    if isinstance(op, ast.IsNot) and truth:
                        return self._check(state, key)
                    if isinstance(op, ast.Is) and not truth:
                        return self._check(state, key)
            return state
        if isinstance(expr, (ast.Name, ast.Attribute)):
            if truth:  # truthy implies non-None
                key = _key(expr)
                if key is not None:
                    return self._check(state, key)
            return state
        if (
            isinstance(expr, ast.Call)
            and isinstance(expr.func, ast.Name)
            and expr.func.id == "isinstance"
            and truth
            and expr.args
        ):
            key = _key(expr.args[0])
            if key is not None:
                return self._check(state, key)
        return state

    @staticmethod
    def _check(state: _OptionalState, key: str) -> _OptionalState:
        if key in state.checked:
            return state
        return _OptionalState(state.checked | {key}, state.origins)

    # -- transfer -------------------------------------------------------- #
    def transfer(self, node: CFGNode, state: _OptionalState) -> _OptionalState:
        if node.kind != "stmt":
            return state
        stmt = node.node
        checked = state.checked
        origins = state.origins

        def assign(name: str, value: ast.expr | None) -> None:
            nonlocal checked, origins
            checked = checked - {name}
            new_origins = self._value_origins(value, origins)
            if origins.get(name, _EMPTY) != new_origins:
                origins = dict(origins)
                if new_origins:
                    origins[name] = new_origins
                else:
                    origins.pop(name, None)
            if value is not None and self._definitely_not_none(value, checked):
                checked = checked | {name}

        if isinstance(stmt, (ast.Assign, ast.AnnAssign)):
            targets = stmt.targets if isinstance(stmt, ast.Assign) else [stmt.target]
            for target in targets:
                for name_node in self._target_names(target):
                    assign(name_node.id, stmt.value if len(targets) == 1 else None)
                if isinstance(target, ast.Attribute):
                    checked = checked - {f".{target.attr}"}
                    if stmt.value is not None and self._definitely_not_none(
                        stmt.value, checked
                    ):
                        checked = checked | {f".{target.attr}"}
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            for name_node in self._target_names(stmt.target):
                assign(name_node.id, None)
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                if item.optional_vars is not None:
                    for name_node in self._target_names(item.optional_vars):
                        # a context manager's __enter__ result is non-None
                        # in every idiom this repo uses; stay neutral:
                        assign(name_node.id, None)
        elif isinstance(stmt, ast.Delete):
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    checked = checked - {target.id}
        if checked is state.checked and origins is state.origins:
            return state
        return _OptionalState(checked, origins)

    @staticmethod
    def _target_names(target: ast.expr) -> list[ast.Name]:
        if isinstance(target, ast.Name):
            return [target]
        if isinstance(target, (ast.Tuple, ast.List)):
            out: list[ast.Name] = []
            for elt in target.elts:
                out.extend(_OptionalAnalysis._target_names(elt))
            return out
        if isinstance(target, ast.Starred):
            return _OptionalAnalysis._target_names(target.value)
        return []

    def _value_origins(
        self, value: ast.expr | None, origins: dict[str, frozenset[str]]
    ) -> frozenset[str]:
        if value is None:
            return _EMPTY
        if isinstance(value, ast.Attribute):
            return frozenset({value.attr})
        if isinstance(value, ast.Name):
            return origins.get(value.id, _EMPTY)
        if isinstance(value, ast.IfExp):
            return self._value_origins(value.body, origins) | self._value_origins(
                value.orelse, origins
            )
        if isinstance(value, ast.BoolOp):
            out = _EMPTY
            for part in value.values:
                out |= self._value_origins(part, origins)
            return out
        return _EMPTY

    def _definitely_not_none(self, value: ast.expr, checked: frozenset[str]) -> bool:
        if isinstance(value, ast.Constant):
            return value.value is not None
        key = _key(value)
        return key is not None and key in checked

    # -- truthiness-test collection -------------------------------------- #
    def collect(
        self, cfg: CFG, entry_states: dict[int, object]
    ) -> list[TruthinessTest]:
        tests: list[TruthinessTest] = []

        def record(expr: ast.expr, state: _OptionalState) -> None:
            origins = _EMPTY
            if isinstance(expr, ast.Name):
                origins = state.origins.get(expr.id, _EMPTY)
            tests.append(
                TruthinessTest(expr.lineno, expr, state.checked, origins)
            )

        for node in cfg.nodes:
            state = entry_states.get(node.index)
            if state is None:
                continue
            if node.kind == "test":
                self._scan(node.node, state, True, record)
            elif node.kind == "stmt":
                for expr in _node_expressions(node) or ():
                    self._scan(expr, state, False, record)
        return tests

    def _scan(
        self,
        expr: ast.expr,
        state: _OptionalState,
        is_condition: bool,
        record: Callable[[ast.expr, _OptionalState], None],
    ) -> None:
        """Record every truthiness position in ``expr``, refining facts
        left-to-right through embedded short-circuit operators."""
        if isinstance(expr, ast.BoolOp):
            current = state
            for value in expr.values:
                self._scan(value, current, True, record)
                current = self._assume(
                    value, isinstance(expr.op, ast.And), current
                )
            return
        if isinstance(expr, ast.UnaryOp) and isinstance(expr.op, ast.Not):
            self._scan(expr.operand, state, True, record)
            return
        if isinstance(expr, ast.IfExp):
            self._scan(expr.test, state, True, record)
            self._scan(expr.body, self._assume(expr.test, True, state), False, record)
            self._scan(
                expr.orelse, self._assume(expr.test, False, state), False, record
            )
            return
        if isinstance(expr, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)):
            for generator in expr.generators:
                self._scan(generator.iter, state, False, record)
                for if_clause in generator.ifs:
                    self._scan(if_clause, state, True, record)
                    state = self._assume(if_clause, True, state)
            if isinstance(expr, ast.DictComp):
                self._scan(expr.key, state, False, record)
                self._scan(expr.value, state, False, record)
            else:
                self._scan(expr.elt, state, False, record)
            return
        if is_condition and isinstance(expr, (ast.Name, ast.Attribute)):
            record(expr, state)
            return
        for child in ast.iter_child_nodes(expr):
            if isinstance(child, ast.expr):
                self._scan(child, state, False, record)


# --------------------------------------------------------------------- #
# Per-file assembly (cached on SourceFile by the engine).
# --------------------------------------------------------------------- #


def build_file_flow(source: "SourceFile") -> FileFlow:
    """Both analyses over every function — the once-per-file product."""
    flow = FileFlow()
    for func in iter_functions(source.tree):
        cfg = build_cfg(func)
        taint = _TaintAnalysis(source)
        taint_states = solve_forward(cfg, taint)
        optional = _OptionalAnalysis()
        optional_states = solve_forward(cfg, optional)
        flow.functions.append(
            FunctionFlow(
                func=func,
                cfg=cfg,
                mutations=taint.collect(cfg, taint_states),
                tests=optional.collect(cfg, optional_states),
            )
        )
    return flow
