"""The rule catalog: every mechanized contract, registered on import.

Mirrors the built-in registration block at the bottom of
:mod:`repro.inference.registry` — importing this package populates the
engine's rule registry exactly once, and duplicate ids raise. Each rule
module's docstring carries the contract's history (which PR paid for it);
``tests/tooling/test_analysis.py`` holds the meta-test that refuses rules
shipped without a known-bad and a known-good fixture.
"""

from __future__ import annotations

from ..engine import register_rule
from .broad_except import BroadExceptRule
from .dtype_literals import DtypeLiteralRule
from .lock_discipline import LockDisciplineRule
from .optional_guard import OptionalGuardRule
from .pickle_boundary import PickleBoundaryRule
from .publish_escape import PublishEscapeRule
from .test_tolerance import AssertAllcloseAtolRule
from .view_mutation import ViewMutationRule

__all__ = [
    "DtypeLiteralRule",
    "OptionalGuardRule",
    "LockDisciplineRule",
    "PickleBoundaryRule",
    "BroadExceptRule",
    "AssertAllcloseAtolRule",
    "ViewMutationRule",
    "PublishEscapeRule",
]

# ---------------------------------------------------------------------- #
# Built-in registrations: the repo's contract catalog (S1-S7, T1).
# S2/S6/S7 consume the dataflow tier (repro.analysis.flow).
# ---------------------------------------------------------------------- #
register_rule(DtypeLiteralRule())        # S1 · PR 7 precision policy
register_rule(OptionalGuardRule())       # S2 · PR 4 truthiness-guard bugs
register_rule(LockDisciplineRule())      # S3 · PR 8 snapshot contract
register_rule(PickleBoundaryRule())      # S4 · PR 6 process-pool contract
register_rule(BroadExceptRule())         # S5 · exception hygiene
register_rule(AssertAllcloseAtolRule())  # T1 · explicit tolerance tiers
register_rule(ViewMutationRule())        # S6 · PR 5/6 zero-copy borrow contract
register_rule(PublishEscapeRule())       # S7 · PR 8 snapshot-freeze contract
