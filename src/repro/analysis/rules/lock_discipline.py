"""S3 — ``lock-discipline``: ``# guarded-by: <lock>`` attributes stay locked.

The PR 8 snapshot contract: ``CrowdService`` is only torn-read-free while
every touch of its shared registry state (``_entries``, ``_clock``,
``stats``) happens under ``self._lock``. The test suite pins the observable
symptom (a writer-thread test), but a new method reading ``self._entries``
without the lock would pass every test and still race under load.

Mechanization: an attribute assignment in ``__init__`` carrying a
``# guarded-by: <lockname>`` trailing comment declares the attribute
lock-protected. In every other method of that class, loads and stores of
``self.<attr>`` must be lexically inside a ``with self.<lockname>:`` block
— except in methods whose name ends in ``_locked`` (the documented
convention for "caller holds the lock"; their *call sites* are inside
locked regions) and in ``__init__`` itself (no concurrency before the
constructor returns). The declaration is per class, so the rule works on
any module that adopts the comment convention, not just the serving layer.
"""

from __future__ import annotations

import ast
import re
from typing import Iterator

from ..engine import Finding, SourceFile

__all__ = ["LockDisciplineRule"]

_GUARDED_BY_RE = re.compile(r"#\s*guarded-by:\s*([A-Za-z_][A-Za-z0-9_]*)")
_MARKER = "guarded-by"


def _self_attr(node: ast.expr) -> str | None:
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


def _declared_protected(init: ast.FunctionDef, source: SourceFile) -> dict[str, str]:
    """``{attr: lock_attr}`` from guarded-by comments on __init__ assignments."""
    protected: dict[str, str] = {}
    for stmt in ast.walk(init):
        if isinstance(stmt, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
            targets = stmt.targets if isinstance(stmt, ast.Assign) else [stmt.target]
            for lineno in range(stmt.lineno, stmt.end_lineno + 1):
                comment = source.comment_on(lineno)
                match = _GUARDED_BY_RE.search(comment) if comment else None
                if match:
                    for target in targets:
                        attr = _self_attr(target)
                        if attr is not None:
                            protected[attr] = match.group(1)
                    break
    return protected


class LockDisciplineRule:
    rule_id = "lock-discipline"
    description = (
        "access to a `# guarded-by:` attribute outside `with self.<lock>` "
        "(and outside *_locked methods)"
    )

    def check(self, source: SourceFile) -> Iterator[Finding]:
        if _MARKER not in source.text:
            return
        for node in ast.walk(source.tree):
            if isinstance(node, ast.ClassDef):
                yield from self._check_class(node, source)

    def _check_class(self, cls: ast.ClassDef, source: SourceFile) -> Iterator[Finding]:
        init = next(
            (
                stmt
                for stmt in cls.body
                if isinstance(stmt, ast.FunctionDef) and stmt.name == "__init__"
            ),
            None,
        )
        if init is None:
            return
        protected = _declared_protected(init, source)
        if not protected:
            return
        for method in cls.body:
            if not isinstance(method, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if method.name == "__init__" or method.name.endswith("_locked"):
                continue
            yield from self._scan(method, protected, frozenset(), source, method.name)

    def _scan(
        self,
        node: ast.AST,
        protected: dict[str, str],
        held: frozenset[str],
        source: SourceFile,
        method: str,
    ) -> Iterator[Finding]:
        if isinstance(node, (ast.With, ast.AsyncWith)):
            acquired = {
                attr
                for item in node.items
                if (attr := _self_attr(item.context_expr)) is not None
            }
            for item in node.items:
                yield from self._scan(item, protected, held, source, method)
            for stmt in node.body:
                yield from self._scan(stmt, protected, held | acquired, source, method)
            return
        attr = _self_attr(node) if isinstance(node, ast.Attribute) else None
        if attr is not None and attr in protected and protected[attr] not in held:
            yield Finding(
                file=source.rel,
                line=node.lineno,
                rule_id=self.rule_id,
                message=(
                    f"self.{attr} is guarded-by self.{protected[attr]} but "
                    f"{method}() touches it outside `with self."
                    f"{protected[attr]}:` (rename to *_locked if the caller "
                    "holds the lock)"
                ),
            )
        for child in ast.iter_child_nodes(node):
            yield from self._scan(child, protected, held, source, method)
