"""S6 — ``view-mutation``: never mutate a borrowed zero-copy view in place.

The PR 5/6 bit-identity contract: `CrowdShard` views alias the parent
matrix's cached COO triples (``flat_label_pairs``/``label_incidence``
return the caches themselves, "read-only, like the other cached views"),
and ``SparseLabelShard.load(..., mmap=True)`` maps the shard *file* —
so an in-place write through any of them corrupts shared state that
every other consumer (and the tree-reduce determinism guarantee) relies
on. The sanctioned idiom is to launder first: ``.copy()`` /
``.astype(...)`` / ``to_matrix()`` all allocate fresh storage.

Mechanization: the flow tier's taint analysis
(:mod:`repro.analysis.flow.facts`) seeds "borrowed" object ids at the
declared accessor sites, propagates them through assignments, tuple
unpacking, subscripting, and the view-returning numpy calls
(``asarray``/``reshape``/...), and treats every other call result as
fresh — which is exactly what makes an intervening ``.copy()`` silence
the rule. Any collected in-place write (subscript store, aug-assign,
``out=`` keyword, mutating method) whose target may point to a borrowed
id is flagged. Path-sensitivity comes for free: a write only reachable
after laundering re-binds the name to a fresh id on that path.
"""

from __future__ import annotations

from typing import Iterator

from ..engine import Finding, SourceFile

__all__ = ["ViewMutationRule"]


class ViewMutationRule:
    rule_id = "view-mutation"
    description = (
        "in-place write to a borrowed zero-copy view/memmap "
        "(corrupts shared caches) — `.copy()` first"
    )
    uses_flow = True  # meta-test: must ship a guarded/laundered good fixture

    def check(self, source: SourceFile) -> Iterator[Finding]:
        for mutation in source.flow().mutations():
            if not mutation.borrowed_from:
                continue
            origin = ", ".join(mutation.borrowed_from)
            yield Finding(
                file=source.rel,
                line=mutation.lineno,
                rule_id=self.rule_id,
                message=(
                    f"{mutation.kind} on {mutation.target!r}, which may be a "
                    f"borrowed view ({origin}) — in-place writes corrupt the "
                    "shared cache/shard file; `.copy()` before mutating"
                ),
            )
