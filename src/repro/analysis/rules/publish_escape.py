"""S7 — ``publish-escape``: never mutate an object after publishing it.

The PR 8 torn-read contract: ``CrowdService`` serves lock-free reads by
atomic snapshot swap — ``entry.snapshot = (version, result)`` — which is
only safe because a published snapshot is *frozen*. Mutating ``result``
(or any alias of it) after the store hands readers a value that changes
under them: the torn read the snapshot pattern exists to prevent, and
one the lock-discipline rule (S3) cannot see because the write happens
outside any lock region, after publication.

Mechanization: the flow tier's taint analysis marks the object ids
reaching a publishing store — an attribute named ``snapshot`` /
``*_snapshot``, or any store whose line carries a ``# published``
comment — as published *from that program point on* (publication rides
in the flow state, so a mutate-then-publish build-up phase is fine).
Tuple/container values publish their elements too, which is what makes
the ``(version, result)`` idiom taint ``result``. Any later collected
in-place write whose target may point to a published id is flagged with
the publish site's line. Publishing a defensive copy
(``dict(result)`` / ``result.copy()``) launders, as does re-binding the
local to fresh storage before further mutation.
"""

from __future__ import annotations

from typing import Iterator

from ..engine import Finding, SourceFile

__all__ = ["PublishEscapeRule"]


class PublishEscapeRule:
    rule_id = "publish-escape"
    description = (
        "in-place write to an object already published into a snapshot "
        "(torn read) — publish a copy or mutate before publishing"
    )
    uses_flow = True  # meta-test: must ship a publish-a-copy good fixture

    def check(self, source: SourceFile) -> Iterator[Finding]:
        for mutation in source.flow().mutations():
            if not mutation.published_at:
                continue
            sites = ", ".join(f"line {line}" for line in mutation.published_at)
            yield Finding(
                file=source.rel,
                line=mutation.lineno,
                rule_id=self.rule_id,
                message=(
                    f"{mutation.kind} on {mutation.target!r} after it was "
                    f"published into a snapshot ({sites}) — readers see the "
                    "mutation mid-flight; publish a copy instead"
                ),
            )
