"""S1 — ``dtype-literal``: only ``repro.autodiff.dtypes`` may name a dtype.

Migrated from ``tests/tooling/test_no_float64_literals.py`` (PR 7), whose
rationale carries over verbatim: hard-coded ``np.float64`` / ``np.float32``
(or ``"float64"`` string literals, or ``from numpy import float64``) bypass
the precision policy — exactly the bug PR 7 fixed in ``Embedding``, where a
float32 pretrained matrix was silently doubled to float64. Comments and
docstrings are free to *talk about* dtypes; only attribute accesses, exact
string constants, imports, and bare names are banned.

The scope is wider than the original test: all of ``src/repro`` (not just
the autodiff package), because the two-precision system only pays off if
the rest of the stack routes through :func:`repro.autodiff.dtypes.
coerce_array` / :func:`~repro.autodiff.dtypes.resolve_dtype` too. The
autodiff package itself is held at zero findings (no baseline entries);
the historical ``np.float64(...)`` casts in the inference/crowd layers are
carried by the baseline ratchet and shrink over time.
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator

from ..engine import Finding, SourceFile

__all__ = ["DtypeLiteralRule"]

_BANNED_NAMES = frozenset({"float32", "float64"})  # lint: ok(dtype-literal)
_POLICY_MODULE = "src/repro/autodiff/dtypes.py"


class DtypeLiteralRule:
    rule_id = "dtype-literal"
    description = (
        "raw float32/float64 literals outside the precision-policy module "
        "(route through repro.autodiff.dtypes)"
    )

    def check(self, source: SourceFile) -> Iterator[Finding]:
        if not source.rel.startswith("src/") or source.rel == _POLICY_MODULE:
            return
        for node in ast.walk(source.tree):
            what = self._violation(node)
            if what is not None:
                yield Finding(
                    file=source.rel,
                    line=node.lineno,
                    rule_id=self.rule_id,
                    message=(
                        f"{what} names a dtype outside repro.autodiff.dtypes; "
                        "use resolve_dtype/coerce_array/get_default_dtype"
                    ),
                )

    @staticmethod
    def _violation(node: ast.AST) -> str | None:
        # np.float64, numpy.float32, xp.float64, ... — any attribute access
        if isinstance(node, ast.Attribute) and node.attr in _BANNED_NAMES:
            return f"attribute .{node.attr}"
        # dtype="float64" style string literals (exact match only, so
        # docstrings mentioning dtypes stay legal)
        if isinstance(node, ast.Constant) and node.value in _BANNED_NAMES:
            return f"string literal {node.value!r}"
        # from numpy import float64
        if isinstance(node, ast.ImportFrom):
            for alias in node.names:
                if alias.name in _BANNED_NAMES:
                    return f"import of {alias.name}"
        # bare float64 name (e.g. after a star import)
        if isinstance(node, ast.Name) and node.id in _BANNED_NAMES:
            return f"bare name {node.id}"
        return None
