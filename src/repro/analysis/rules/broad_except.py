"""S5 — ``broad-except``: catch-alls must say why they exist.

A bare ``except:`` or ``except Exception:`` swallows everything —
including the ``KeyboardInterrupt``-adjacent surprises and genuine bugs a
narrow handler would surface. The repo has exactly two legitimate sites
(the scipy fast-CSR capability probe in ``crowd/sharding.py`` and the
process-pool warmup in ``inference/sharding.py``), and both are
legitimate *because of a reason a reader needs to know*: the probe must
degrade to the slow path on any scipy ABI surprise, and the warmup must
never kill a worker that the first real task would diagnose better.

Mechanization: a broad handler (bare ``except``, ``except Exception``,
``except BaseException``, or a tuple containing either) is clean iff a
comment appears on the ``except`` line itself or between it and the first
statement of the handler body — i.e. the justification sits exactly where
the next reader will look. ``# lint: ok(broad-except)`` suppressions
don't count as justification (they go through the suppression machinery,
which tracks staleness); write an actual reason.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..engine import Finding, SourceFile

__all__ = ["BroadExceptRule"]

_BROAD_NAMES = frozenset({"Exception", "BaseException"})


def _is_broad(handler: ast.ExceptHandler) -> bool:
    kind = handler.type
    if kind is None:
        return True
    if isinstance(kind, ast.Name):
        return kind.id in _BROAD_NAMES
    if isinstance(kind, ast.Tuple):
        return any(isinstance(el, ast.Name) and el.id in _BROAD_NAMES for el in kind.elts)
    return False


class BroadExceptRule:
    rule_id = "broad-except"
    description = (
        "bare/`except Exception` without a justifying comment on or "
        "directly under the except line"
    )

    def check(self, source: SourceFile) -> Iterator[Finding]:
        if not source.rel.startswith("src/"):
            return
        for node in ast.walk(source.tree):
            if not (isinstance(node, ast.ExceptHandler) and _is_broad(node)):
                continue
            first_stmt = node.body[0].lineno if node.body else node.lineno
            if source.has_justifying_comment(node.lineno, first_stmt):
                continue
            label = "bare except" if node.type is None else "except Exception"
            yield Finding(
                file=source.rel,
                line=node.lineno,
                rule_id=self.rule_id,
                message=(
                    f"{label} without a justifying comment — say why "
                    "swallowing everything is correct here, or narrow the "
                    "exception type"
                ),
            )
