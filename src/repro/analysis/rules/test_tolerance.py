"""T1 — ``allclose-atol``: test tolerances are explicit tiers, not defaults.

``np.testing.assert_allclose`` defaults to ``rtol=1e-7, atol=0`` — a
tolerance nobody chose. The repo's discipline (ROADMAP, Precision policy)
is explicit tiers via :func:`repro.autodiff.dtypes.equivalence_atol`:
float64 contracts pin at 1e-10, float32 twins at 1e-4, and anything
looser is a per-site decision that should be visible at the call site.
An ``assert_allclose`` without ``atol=`` near zero is also vacuous for
values that straddle 0 (pure-relative tolerance around 0 is infinite
strictness or a crash, never what was meant).

Mechanization: every ``assert_allclose`` call in ``tests/`` must pass an
explicit ``atol=`` keyword. Calls that forward ``**kwargs`` are assumed
compliant (the tolerance decision was made by the caller being wrapped).
The ~80 pre-existing defaulted calls ride the baseline ratchet and shrink
as files are touched; ``tests/inference``'s core contract files were
converted when this rule landed.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..engine import Finding, SourceFile

__all__ = ["AssertAllcloseAtolRule"]


class AssertAllcloseAtolRule:
    rule_id = "allclose-atol"
    description = (
        "assert_allclose without an explicit atol= tier "
        "(use repro.autodiff.dtypes.equivalence_atol)"
    )

    def check(self, source: SourceFile) -> Iterator[Finding]:
        if not source.rel.startswith("tests/"):
            return
        for node in ast.walk(source.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            name = (
                func.id
                if isinstance(func, ast.Name)
                else func.attr if isinstance(func, ast.Attribute) else None
            )
            if name != "assert_allclose":
                continue
            # kw.arg is None for **kwargs forwarding — treat as explicit.
            if any(kw.arg == "atol" or kw.arg is None for kw in node.keywords):
                continue
            yield Finding(
                file=source.rel,
                line=node.lineno,
                rule_id=self.rule_id,
                message=(
                    "assert_allclose without atol= relies on the default "
                    "rtol-only tolerance; pass an explicit tier "
                    "(equivalence_atol(...) or a justified literal)"
                ),
            )
