"""S2 — ``optional-guard``: optional numerics are guarded ``is not None``.

The PR 4 bug class: ``TrainerConfig.grad_clip: float | None`` and
``lr_decay_every: int | None`` were guarded truthily (``if config.
grad_clip:``), so the legal-looking ``grad_clip=0.0`` silently disabled
clipping instead of clipping at 0 — falsy-but-set values conflate with
None. The fix (and the contract since) is ``is not None`` everywhere an
optional numeric or optional array decides a branch. Optional *strings*
are exempt: ``entry.method or self.method`` is idiomatic and the empty
string genuinely means "unset" there.

Mechanization: a cross-file ``prepare`` pass collects every field name
annotated optional-numeric/array (``float | None``, ``Optional[int]``,
``np.ndarray | None``) in ``src/`` — dataclass fields and ``self.x:``
annotations — because the annotation usually lives in a config module
(``core/config.py``) while the guard lives in a consumer
(``baselines/common.py``). Comparisons (``x is not None``, ``x > 0``)
never flag — only the naked-name truthiness test does.

Since the dataflow tier (PR 10) the per-test decision is *path-
sensitive*, via the flow facts' must-checked analysis
(:mod:`repro.analysis.flow.facts`): a truthiness test is only flagged if
no ``is not None`` check dominates it — so the guarded-then-used idiom

    if config.grad_clip is not None and config.grad_clip:
        ...

stays silent (the second conjunct sits on the first's true-edge), while
a truthiness test on a path some join reaches unguarded still flags.
The same facts carry value *origins*, so a local assigned from an
optional field (``clip = config.grad_clip``) is recognized across files
— replacing the old same-file-only compromise for bare names, which
could not tell ``clip`` apart from any generic local and therefore only
matched names annotated in the same file. Same-file annotated locals
and parameters still match by name, now minus the dominated ones.
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator

from ..engine import Finding, SourceFile

__all__ = ["OptionalGuardRule"]

_NUMERIC_NAMES = frozenset({"float", "int"})
_ARRAY_ATTRS = frozenset({"ndarray"})


def _flatten_union(annotation: ast.expr) -> list[ast.expr]:
    parts: list[ast.expr] = []

    def walk(node: ast.expr) -> None:
        if isinstance(node, ast.BinOp) and isinstance(node.op, ast.BitOr):
            walk(node.left)
            walk(node.right)
        else:
            parts.append(node)

    walk(annotation)
    return parts


def _is_optional_numeric(annotation: ast.expr | None) -> bool:
    """``X | None`` / ``Optional[X]`` with every X numeric or an ndarray."""
    if annotation is None:
        return False
    if isinstance(annotation, ast.BinOp) and isinstance(annotation.op, ast.BitOr):
        parts = _flatten_union(annotation)
        nones = [p for p in parts if isinstance(p, ast.Constant) and p.value is None]
        others = [p for p in parts if not (isinstance(p, ast.Constant) and p.value is None)]
        return bool(nones) and bool(others) and all(_is_numericish(p) for p in others)
    if (
        isinstance(annotation, ast.Subscript)
        and isinstance(annotation.value, ast.Name)
        and annotation.value.id == "Optional"
    ):
        return _is_numericish(annotation.slice)
    return False


def _is_numericish(node: ast.expr) -> bool:
    if isinstance(node, ast.Name):
        return node.id in _NUMERIC_NAMES
    if isinstance(node, ast.Attribute):
        return node.attr in _ARRAY_ATTRS
    return False


def _annotated_names(tree: ast.AST) -> tuple[set[str], set[str]]:
    """(field/attr names, bare local names) annotated optional-numeric."""
    fields: set[str] = set()
    locals_: set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.AnnAssign) and _is_optional_numeric(node.annotation):
            target = node.target
            if isinstance(target, ast.Name):
                # class-body AnnAssign is a (dataclass) field; either way
                # the bare name is also guarded in this file's scope.
                fields.add(target.id)
                locals_.add(target.id)
            elif isinstance(target, ast.Attribute):
                fields.add(target.attr)
        elif isinstance(node, ast.arg) and _is_optional_numeric(node.annotation):
            locals_.add(node.arg)
    return fields, locals_


class OptionalGuardRule:
    rule_id = "optional-guard"
    description = (
        "truthiness branch on an optional numeric/array field with no "
        "dominating None-check (conflates 0/0.0 with None) — use `is not None`"
    )
    uses_flow = True  # meta-test: must ship a dominated-check good fixture

    def __init__(self) -> None:
        self._fields: frozenset[str] = frozenset()

    def prepare(self, sources: Iterable[SourceFile]) -> None:
        fields: set[str] = set()
        for source in sources:
            if source.rel.startswith("src/"):
                fields |= _annotated_names(source.tree)[0]
        self._fields = frozenset(fields)

    def check(self, source: SourceFile) -> Iterator[Finding]:
        if not source.rel.startswith("src/"):
            return
        _, local_names = _annotated_names(source.tree)
        for test in source.flow().tests():
            expr = test.expr
            name = None
            if isinstance(expr, ast.Attribute) and expr.attr in self._fields:
                if f".{expr.attr}" in test.checked:
                    continue  # an `is not None` check dominates this use
                name = expr.attr
            elif isinstance(expr, ast.Name):
                known_optional = expr.id in local_names or (
                    # assigned from an optional field, possibly cross-file
                    test.origins & self._fields
                )
                if known_optional and expr.id not in test.checked:
                    name = expr.id
            if name is not None:
                yield Finding(
                    file=source.rel,
                    line=test.lineno,
                    rule_id=self.rule_id,
                    message=(
                        f"truthiness test on optional numeric {name!r} treats "
                        "0/0.0 as unset (the PR 4 grad_clip/lr_decay_every bug "
                        "class); guard with `is not None`"
                    ),
                )
