"""S4 — ``pickle-boundary``: executor tasks must pickle by name.

The PR 6 contract: the sharded map runs one code path across serial,
thread-pool, and process-pool execution, which only works because every
callable crossing the executor boundary — mappers, the task functions in
``inference/sharding.py``, the ``ProcessPoolExecutor`` initializer —
pickles *by name*: module-level functions and bound methods do, lambdas
and closures raise ``PicklingError`` the first time someone passes
``workers=N``. Thread pools mask the bug (nothing is pickled), so a
lambda handed to ``executor.submit`` works in every test that uses
threads and dies in production with processes.

Mechanization: at every ``<obj>.submit(fn, ...)`` call site and every
``...Executor(initializer=...)`` construction, the callable expression
must not be a ``lambda`` and must not be a name bound to a function (or
lambda) defined inside an enclosing function — both are detectable
syntactically. ``functools.partial(...)`` is unwrapped and its first
argument held to the same standard (partials of module-level functions
pickle fine; partials of closures don't). Names the rule cannot resolve
(parameters, attributes, imports) pass — the rule catches the regression
class, not every conceivable smuggling route.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..engine import Finding, SourceFile

__all__ = ["PickleBoundaryRule"]


class PickleBoundaryRule:
    rule_id = "pickle-boundary"
    description = (
        "lambda/closure handed to an executor (won't pickle by name for "
        "process pools — use a module-level function or bound method)"
    )

    def check(self, source: SourceFile) -> Iterator[Finding]:
        if not source.rel.startswith("src/"):
            return
        # Scope stack: one set of locally-defined callable names per
        # enclosing function. Module-level defs live in no set and pass.
        yield from self._visit(source.tree, [], source)

    def _visit(
        self, node: ast.AST, scopes: list[set[str]], source: SourceFile
    ) -> Iterator[Finding]:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            if scopes:  # a def nested in a function binds a closure name
                scopes[-1].add(node.name)
            scopes.append(set())
            for child in ast.iter_child_nodes(node):
                yield from self._visit(child, scopes, source)
            scopes.pop()
            return
        if isinstance(node, ast.Assign) and isinstance(node.value, ast.Lambda) and scopes:
            for target in node.targets:
                if isinstance(target, ast.Name):
                    scopes[-1].add(target.id)
        if isinstance(node, ast.Call):
            yield from self._check_call(node, scopes, source)
        for child in ast.iter_child_nodes(node):
            yield from self._visit(child, scopes, source)

    def _check_call(
        self, call: ast.Call, scopes: list[set[str]], source: SourceFile
    ) -> Iterator[Finding]:
        func = call.func
        if isinstance(func, ast.Attribute) and func.attr == "submit" and call.args:
            yield from self._check_callable(call.args[0], scopes, source, "submit()")
        constructor = (
            func.id
            if isinstance(func, ast.Name)
            else func.attr if isinstance(func, ast.Attribute) else ""
        )
        if constructor.endswith("Executor"):
            for keyword in call.keywords:
                if keyword.arg == "initializer":
                    yield from self._check_callable(
                        keyword.value, scopes, source, f"{constructor}(initializer=)"
                    )

    def _check_callable(
        self, expr: ast.expr, scopes: list[set[str]], source: SourceFile, site: str
    ) -> Iterator[Finding]:
        if isinstance(expr, ast.Lambda):
            yield self._finding(expr, source, site, "a lambda")
            return
        if isinstance(expr, ast.Call):
            inner = expr.func
            inner_name = (
                inner.id
                if isinstance(inner, ast.Name)
                else inner.attr if isinstance(inner, ast.Attribute) else ""
            )
            if inner_name == "partial" and expr.args:
                yield from self._check_callable(expr.args[0], scopes, source, site)
            return
        if isinstance(expr, ast.Name) and any(expr.id in scope for scope in scopes):
            yield self._finding(
                expr, source, site, f"{expr.id!r}, a function defined in an enclosing function"
            )

    def _finding(
        self, node: ast.AST, source: SourceFile, site: str, what: str
    ) -> Finding:
        return Finding(
            file=source.rel,
            line=node.lineno,
            rule_id=self.rule_id,
            message=(
                f"{site} receives {what}; executor callables must pickle by "
                "name (module-level function or bound method) so process "
                "pools work — the PR 6 sharding contract"
            ),
        )
