"""The committed-baseline ratchet: tolerate the past, refuse regression.

Rules arrive with pre-existing findings (``allclose-atol`` alone had 80+
when the engine landed). Fixing everything in one PR is neither possible
nor the point — the point is that the counts only ever go *down*. The
baseline records, per ``file::rule_id`` key, how many findings existed
when it was last written; the check then fails on **both** directions:

* **more** findings than the baseline for a key (or a key the baseline
  has never seen) — new violations, listed ``file:line``;
* **fewer** findings than the baseline — congratulations, you fixed some;
  shrink the baseline in the same commit (``--write-baseline``) so a
  later regression of the same site fails instead of silently re-filling
  the slack.

Counts are keyed per file+rule rather than per line so unrelated edits
shifting line numbers don't invalidate the baseline; the CLI prints the
exact ``file:line`` locations whenever a key is over budget.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable

from .engine import Finding

__all__ = [
    "baseline_key",
    "summarize",
    "load_baseline",
    "write_baseline",
    "compare_to_baseline",
    "default_baseline_path",
]

_SEPARATOR = "::"


def default_baseline_path(root: Path | str) -> Path:
    """``<root>/analysis/baseline.json`` — the committed ratchet file."""
    return Path(root) / "analysis" / "baseline.json"


def baseline_key(finding: Finding) -> str:
    return f"{finding.file}{_SEPARATOR}{finding.rule_id}"


def summarize(findings: Iterable[Finding]) -> dict[str, int]:
    """Current findings as sorted ``{file::rule_id: count}``."""
    counts: dict[str, int] = {}
    for finding in findings:
        key = baseline_key(finding)
        counts[key] = counts.get(key, 0) + 1
    return dict(sorted(counts.items()))


def load_baseline(path: Path | str) -> dict[str, int]:
    path = Path(path)
    if not path.is_file():
        return {}
    data = json.loads(path.read_text())
    counts = data.get("findings", data) if isinstance(data, dict) else None
    if not isinstance(counts, dict) or not all(
        isinstance(k, str) and isinstance(v, int) and _SEPARATOR in k
        for k, v in counts.items()
    ):
        raise ValueError(
            f"baseline {path} is not a {{'file::rule_id': count}} mapping"
        )
    return dict(counts)


def write_baseline(findings: Iterable[Finding], path: Path | str) -> dict[str, int]:
    """Write the ratchet file for the current findings; returns the counts."""
    counts = summarize(findings)
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    payload = {
        "_comment": (
            "Contract-lint ratchet (repro.analysis). Counts per file::rule_id "
            "may only shrink: fix findings, then regenerate with "
            "`python -m repro.analysis --write-baseline`. Never hand-raise a "
            "count - new findings belong fixed or `# lint: ok(rule-id)` waived."
        ),
        "findings": counts,
    }
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return counts


def compare_to_baseline(
    findings: Iterable[Finding], baseline: dict[str, int]
) -> tuple[list[Finding], dict[str, tuple[int, int]]]:
    """Split the ratchet verdict into (over-budget findings, stale keys).

    Returns ``(new, stale)``: ``new`` lists every finding of a key whose
    count exceeds the baseline (line-level attribution of *which* finding
    is new is impossible with count keys, so the whole key is shown);
    ``stale`` maps keys whose count fell below the baseline to
    ``(baselined, current)`` — the caller must shrink the baseline. Empty
    both ⇒ clean.
    """
    findings = list(findings)
    counts = summarize(findings)
    new: list[Finding] = []
    for finding in findings:
        key = baseline_key(finding)
        if counts[key] > baseline.get(key, 0):
            new.append(finding)
    stale = {
        key: (expected, counts.get(key, 0))
        for key, expected in sorted(baseline.items())
        if counts.get(key, 0) < expected
    }
    return sorted(new), stale
