"""CLI: ``python -m repro.analysis [--baseline PATH | --no-baseline] [paths...]``.

Default invocation (``python -m repro.analysis`` from the repo root, or
explicitly ``... src tests``) lints the source and test trees against the
committed ratchet at ``analysis/baseline.json`` and exits 0 iff the counts
match it exactly — new findings fail with ``file:line`` locations, and
*fewer* findings than baselined fail too, telling you to shrink the file
(``--write-baseline``) so the fix can never silently regress.

``--no-baseline`` prints every finding raw (exit 1 if any);
``--write-baseline`` regenerates the ratchet from the current findings —
but refuses non-default path arguments unless ``--force``: a ratchet
written from a subtree's findings would make the next full run fail on
everything else as "new". ``--format json`` emits findings, per-rule
counts, and elapsed seconds as one machine-readable object for CI
artifacts; ``--profile`` appends per-rule wall time (the shared dataflow
fixpoints are charged to whichever rule touches a file's flow facts
first). ``--list-rules`` prints the catalog.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

from .baseline import (
    compare_to_baseline,
    default_baseline_path,
    load_baseline,
    write_baseline,
)
from .engine import analyze_paths, available_rules, get_rule

_DEFAULT_PATHS = ("src", "tests")


def _as_json(findings, elapsed: float, timings: dict[str, float] | None) -> str:
    by_rule: dict[str, int] = {}
    for finding in findings:
        by_rule[finding.rule_id] = by_rule.get(finding.rule_id, 0) + 1
    payload = {
        "findings": [
            {
                "file": f.file,
                "line": f.line,
                "rule_id": f.rule_id,
                "message": f.message,
            }
            for f in findings
        ],
        "counts_by_rule": dict(sorted(by_rule.items())),
        "total": len(findings),
        "elapsed_seconds": round(elapsed, 3),
    }
    if timings is not None:
        payload["rule_seconds"] = {
            rule_id: round(seconds, 4)
            for rule_id, seconds in sorted(
                timings.items(), key=lambda item: -item[1]
            )
        }
    return json.dumps(payload, indent=2, sort_keys=False)


def _print_profile(timings: dict[str, float]) -> None:
    print("per-rule wall time (shared flow fixpoints charged to first taker):")
    for rule_id, seconds in sorted(timings.items(), key=lambda item: -item[1]):
        print(f"  {rule_id:20s} {seconds * 1000.0:8.1f} ms")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="AST contract lint for the repro codebase",
    )
    parser.add_argument(
        "paths", nargs="*", default=list(_DEFAULT_PATHS),
        help="files or directories to lint (default: src tests)",
    )
    parser.add_argument(
        "--root", default=".",
        help="repo root findings are keyed relative to (default: cwd)",
    )
    parser.add_argument(
        "--baseline", metavar="PATH", default=None,
        help="ratchet file (default: <root>/analysis/baseline.json)",
    )
    parser.add_argument(
        "--no-baseline", action="store_true",
        help="ignore the ratchet; report every finding",
    )
    parser.add_argument(
        "--write-baseline", action="store_true",
        help="regenerate the ratchet from the current findings and exit",
    )
    parser.add_argument(
        "--force", action="store_true",
        help="allow --write-baseline with non-default paths (a subtree "
        "ratchet makes the next full run fail on everything else)",
    )
    parser.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="output format (json: findings + per-rule counts + elapsed)",
    )
    parser.add_argument(
        "--profile", action="store_true",
        help="report per-rule wall time",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="print the rule catalog"
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule_id in available_rules():
            print(f"{rule_id:18s} {get_rule(rule_id).description}")
        return 0

    if args.write_baseline and not args.force:
        if sorted(args.paths) != sorted(_DEFAULT_PATHS):
            print(
                "refusing --write-baseline with non-default paths "
                f"({' '.join(args.paths)}): the ratchet would hold only that "
                "subtree's findings and the next full run would fail on "
                "everything else as new. Re-run without paths, or pass "
                "--force if you really mean it.",
                file=sys.stderr,
            )
            return 2

    root = Path(args.root).resolve()
    baseline_path = (
        Path(args.baseline) if args.baseline else default_baseline_path(root)
    )
    timings: dict[str, float] | None = (
        {} if (args.profile or args.format == "json") else None
    )
    started = time.perf_counter()
    findings = analyze_paths(args.paths, root=root, timings=timings)
    elapsed = time.perf_counter() - started

    if args.write_baseline:
        counts = write_baseline(findings, baseline_path)
        print(
            f"wrote {baseline_path} ({len(findings)} findings across "
            f"{len(counts)} file/rule keys)"
        )
        return 0

    if args.no_baseline:
        if args.format == "json":
            print(_as_json(findings, elapsed, timings if args.profile else None))
        else:
            for finding in findings:
                print(finding)
            print(
                f"{len(findings)} finding(s) in {elapsed:.2f}s "
                f"({len(available_rules())} rules)"
            )
            if args.profile and timings is not None:
                _print_profile(timings)
        return 1 if findings else 0

    baseline = load_baseline(baseline_path)
    new, stale = compare_to_baseline(findings, baseline)
    if args.format == "json":
        print(_as_json(new, elapsed, timings if args.profile else None))
        return 1 if (new or stale) else 0
    for finding in new:
        print(finding)
    if new:
        print(
            f"{len(new)} finding(s) over the baseline — fix them or waive "
            "with `# lint: ok(rule-id)` on the offending line"
        )
    for key, (expected, actual) in stale.items():
        print(
            f"{key}: baseline records {expected} finding(s), now {actual} — "
            "you fixed some! shrink the ratchet: python -m repro.analysis "
            "--write-baseline"
        )
    if not new and not stale:
        print(
            f"clean: {len(findings)} baselined finding(s), 0 new, "
            f"{elapsed:.2f}s"
        )
        if args.profile and timings is not None:
            _print_profile(timings)
        return 0
    if args.profile and timings is not None:
        _print_profile(timings)
    return 1


if __name__ == "__main__":
    sys.exit(main())
