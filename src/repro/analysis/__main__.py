"""CLI: ``python -m repro.analysis [--baseline PATH | --no-baseline] [paths...]``.

Default invocation (``python -m repro.analysis`` from the repo root, or
explicitly ``... src tests``) lints the source and test trees against the
committed ratchet at ``analysis/baseline.json`` and exits 0 iff the counts
match it exactly — new findings fail with ``file:line`` locations, and
*fewer* findings than baselined fail too, telling you to shrink the file
(``--write-baseline``) so the fix can never silently regress.

``--no-baseline`` prints every finding raw (exit 1 if any);
``--write-baseline`` regenerates the ratchet from the current findings;
``--list-rules`` prints the catalog.
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

from .baseline import (
    compare_to_baseline,
    default_baseline_path,
    load_baseline,
    write_baseline,
)
from .engine import analyze_paths, available_rules, get_rule

_DEFAULT_PATHS = ("src", "tests")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="AST contract lint for the repro codebase",
    )
    parser.add_argument(
        "paths", nargs="*", default=list(_DEFAULT_PATHS),
        help="files or directories to lint (default: src tests)",
    )
    parser.add_argument(
        "--root", default=".",
        help="repo root findings are keyed relative to (default: cwd)",
    )
    parser.add_argument(
        "--baseline", metavar="PATH", default=None,
        help="ratchet file (default: <root>/analysis/baseline.json)",
    )
    parser.add_argument(
        "--no-baseline", action="store_true",
        help="ignore the ratchet; report every finding",
    )
    parser.add_argument(
        "--write-baseline", action="store_true",
        help="regenerate the ratchet from the current findings and exit",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="print the rule catalog"
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule_id in available_rules():
            print(f"{rule_id:18s} {get_rule(rule_id).description}")
        return 0

    root = Path(args.root).resolve()
    baseline_path = (
        Path(args.baseline) if args.baseline else default_baseline_path(root)
    )
    started = time.perf_counter()
    findings = analyze_paths(args.paths, root=root)
    elapsed = time.perf_counter() - started

    if args.write_baseline:
        counts = write_baseline(findings, baseline_path)
        print(
            f"wrote {baseline_path} ({len(findings)} findings across "
            f"{len(counts)} file/rule keys)"
        )
        return 0

    if args.no_baseline:
        for finding in findings:
            print(finding)
        print(
            f"{len(findings)} finding(s) in {elapsed:.2f}s "
            f"({len(available_rules())} rules)"
        )
        return 1 if findings else 0

    baseline = load_baseline(baseline_path)
    new, stale = compare_to_baseline(findings, baseline)
    for finding in new:
        print(finding)
    if new:
        print(
            f"{len(new)} finding(s) over the baseline — fix them or waive "
            "with `# lint: ok(rule-id)` on the offending line"
        )
    for key, (expected, actual) in stale.items():
        print(
            f"{key}: baseline records {expected} finding(s), now {actual} — "
            "you fixed some! shrink the ratchet: python -m repro.analysis "
            "--write-baseline"
        )
    if not new and not stale:
        print(
            f"clean: {len(findings)} baselined finding(s), 0 new, "
            f"{elapsed:.2f}s"
        )
        return 0
    return 1


if __name__ == "__main__":
    sys.exit(main())
