"""repro.analysis — the AST contract-lint engine (see ``engine`` docs).

Run it as ``python -m repro.analysis [paths...]`` (defaults to
``src tests`` against the committed baseline ratchet), or drive it
programmatically::

    from repro.analysis import analyze_paths, available_rules
    findings = analyze_paths(["src", "tests"], root=repo_root)

Importing the package registers the built-in rule catalog
(:mod:`repro.analysis.rules`).
"""

from __future__ import annotations

from .baseline import (
    compare_to_baseline,
    default_baseline_path,
    load_baseline,
    summarize,
    write_baseline,
)
from .engine import (
    Finding,
    Rule,
    SourceFile,
    SYNTAX_ERROR_ID,
    UNUSED_SUPPRESSION_ID,
    analyze_paths,
    analyze_sources,
    available_rules,
    collect_files,
    get_rule,
    register_rule,
    registered_rules,
)
from . import rules as _rules  # noqa: F401  (import populates the registry)

__all__ = [
    "Finding",
    "Rule",
    "SourceFile",
    "SYNTAX_ERROR_ID",
    "UNUSED_SUPPRESSION_ID",
    "analyze_paths",
    "analyze_sources",
    "available_rules",
    "collect_files",
    "get_rule",
    "register_rule",
    "registered_rules",
    "compare_to_baseline",
    "default_baseline_path",
    "load_baseline",
    "summarize",
    "write_baseline",
]
