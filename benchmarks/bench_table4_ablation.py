"""Table IV — ablation study on both datasets.

Variants: MV-Rule, GLAD-Rule (AggNet posterior stands in on NER), w/o-Rule,
MV-t, our-other-rules ("however" / begin-only transition rules), and the
full Logic-LNCL student/teacher.

Shape expectations: the full method tops both columns; w/o-Rule trails it;
static-posterior distillation (MV-Rule) is suboptimal; deliberately bad
rules hurt, dramatically so for the NER teacher (the paper records 1.23 F1).
"""

from __future__ import annotations

from conftest import fast_mode

from repro.experiments import (
    ABLATION_METHODS,
    PAPER_TABLE4,
    NERBenchConfig,
    Row,
    SentimentBenchConfig,
    Table,
    aggregate_runs,
    bench_scale,
    build_ner_data,
    build_sentiment_data,
    run_ner_ablation,
    run_sentiment_ablation,
)


def _configs() -> tuple[SentimentBenchConfig, NERBenchConfig]:
    if fast_mode():
        return (
            SentimentBenchConfig(
                num_train=250, num_dev=80, num_test=80, num_annotators=20,
                epochs=4, feature_maps=12, embedding_dim=24, seeds=(0,),
            ),
            NERBenchConfig(
                num_train=120, num_dev=40, num_test=40, num_annotators=10,
                epochs=4, conv_features=32, gru_hidden=16, embedding_dim=24, seeds=(0,),
            ),
        )
    scale = bench_scale()
    return (
        SentimentBenchConfig(
            num_train=int(900 * scale), num_dev=int(250 * scale), num_test=int(250 * scale),
            epochs=12, seeds=tuple(range(max(2, int(2 * scale)))),
        ),
        NERBenchConfig(
            num_train=int(400 * scale), num_dev=int(120 * scale), num_test=int(120 * scale),
            epochs=10, seeds=tuple(range(max(2, int(2 * scale)))),
        ),
    )


def _run_table4() -> Table:
    sent_config, ner_config = _configs()
    table = Table(
        title="Table IV — Ablation study (sentiment accuracy / NER span F1, %)",
        metrics=["sent_prediction", "sent_inference", "ner_prediction", "ner_inference"],
        notes=[
            f"sentiment: {sent_config.num_train} train, {len(sent_config.seeds)} seeds; "
            f"NER: {ner_config.num_train} sentences, {len(ner_config.seeds)} seeds",
        ],
    )
    sent_tasks = {s: build_sentiment_data(s, sent_config) for s in sent_config.seeds}
    ner_tasks = {s: build_ner_data(s, ner_config) for s in ner_config.seeds}
    for name in ABLATION_METHODS:
        runs = []
        for seed in sent_config.seeds:
            sent = run_sentiment_ablation(name, sent_tasks[seed], sent_config, seed)
            run = {f"sent_{k}": v for k, v in sent.items()}
            if seed in ner_tasks:
                ner = run_ner_ablation(name, ner_tasks[seed], ner_config, seed)
                run.update({f"ner_{k}": v for k, v in ner.items()})
            runs.append(run)
        mean, std = aggregate_runs(runs)
        table.add(Row(name, mean, std, PAPER_TABLE4.get(name, {})))
    return table


def test_table4_ablation(benchmark, archive):
    table = benchmark.pedantic(_run_table4, rounds=1, iterations=1)
    archive("table4_ablation", table.render())

    for row in table.rows:
        for value in row.measured.values():
            assert 0.0 <= value <= 1.0
    if not fast_mode():
        # Full method's inference must not lose to the static MV-Rule variant.
        assert (
            table.measured("Logic-LNCL-teacher", "ner_inference")
            >= table.measured("MV-Rule", "ner_inference") - 0.03
        )
