"""Frozen seed-commit implementations of the benchmarked hot paths.

``bench_hotpaths.py`` reports before/after timings. "Before" must not
silently improve as the live engine gets faster, so this module pins the
relevant seed code (commit ``cf64a19``) verbatim, trimmed to the ops the
GRU training path uses:

* ``SeedTensor`` — the seed autodiff engine: closure-per-op tape, no
  no-grad fast path, ``np.where``-based sigmoid, full-array ``np.add.at``
  scatter for slice gradients, zeros+add gradient accumulation.
* ``SeedGRUCell`` / ``seed_gru_forward`` — the per-gate cell and the
  element-at-a-time time loop (~12 tape nodes per step).
* ``seed_sequence_update_confusions`` / ``seed_sequence_posterior_qa`` —
  the per-sentence / per-annotator EM loops, including the seed's
  per-call ``annotators_of`` scan.
* ``seed_dawid_skene`` — the seed DS EM: dense ``(I, J, K)`` one-hot
  einsums every sweep (PR 2 replaced them with sparse COO kernels).
* ``seed_forward_backward`` — the seed per-chain scaled forward–backward
  with its per-timestep Python loops (PR 2 batches all chains per step).
* ``seed_glad`` / ``seed_pm`` / ``seed_catd`` — the pre-PR-3 dense
  implementations: GLAD's ``(I, J)`` masked scans every E-step and
  gradient step, PM/CATD's ``(I, J, K)`` one-hot einsums per sweep
  (PR 3 moved all three onto the sparse COO kernels).
* ``seed_conv1d_train_step`` — the pre-PR-3 im2col convolution: forward
  and backward both materialize the ``(B, T_out, width·D)`` window buffer
  (PR 3's width-loop variant accumulates shifted matmuls instead).
* ``seed_streaming_full_recompute`` — the naive label-stream loop: per
  arriving batch, re-run the dense DS EM from scratch on everything seen
  so far (PR 4's streaming subsystem replaces this with O(batch)
  stepwise updates over decayed sufficient statistics).

Do not "fix" or optimize anything here: it is a measurement baseline, not
production code.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

MISSING = -1


class SeedTensor:
    """Seed-commit Tensor (subset): every op always builds its closure."""

    __slots__ = ("data", "grad", "requires_grad", "_parents", "_backward_fn")

    def __init__(self, data, requires_grad: bool = False) -> None:
        self.data = np.asarray(data, dtype=np.float64)
        self.grad: np.ndarray | None = None
        self.requires_grad = bool(requires_grad)
        self._parents: tuple[SeedTensor, ...] = ()
        self._backward_fn: Callable[[np.ndarray], None] | None = None

    # -- graph plumbing (verbatim seed behavior) ----------------------- #
    @staticmethod
    def _make(data, parents: Sequence["SeedTensor"], backward_fn) -> "SeedTensor":
        out = SeedTensor(data)
        if any(p._tracked for p in parents):
            out._parents = tuple(parents)
            out._backward_fn = backward_fn
        return out

    @property
    def _tracked(self) -> bool:
        return self.requires_grad or self._backward_fn is not None

    def _accumulate(self, grad: np.ndarray) -> None:
        if not self._tracked:
            return
        if self.grad is None:
            self.grad = np.zeros_like(self.data)
        self.grad += grad

    def zero_grad(self) -> None:
        self.grad = None

    def _topo_order(self):
        order, visited = [], set()
        stack = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                order.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if id(parent) not in visited:
                    stack.append((parent, False))
        return order

    def backward(self, grad: np.ndarray | None = None) -> None:
        if grad is None:
            grad = np.ones_like(self.data)
        order = self._topo_order()
        for node in order:
            if node._backward_fn is not None and node is not self:
                node.grad = None
        self._accumulate(grad)
        for node in reversed(order):
            if node._backward_fn is None or node.grad is None:
                continue
            node_grad, node.grad = node.grad, None
            node._backward_fn(node_grad)
            if node.requires_grad:
                node.grad = node_grad

    # -- ops (seed formulas) ------------------------------------------- #
    @staticmethod
    def _unbroadcast(grad: np.ndarray, shape) -> np.ndarray:
        if grad.shape == shape:
            return grad
        extra = grad.ndim - len(shape)
        if extra > 0:
            grad = grad.sum(axis=tuple(range(extra)))
        stretched = tuple(
            i for i, n in enumerate(shape) if n == 1 and grad.shape[i] != 1
        )
        if stretched:
            grad = grad.sum(axis=stretched, keepdims=True)
        return grad.reshape(shape)

    def __add__(self, other):
        other = other if isinstance(other, SeedTensor) else SeedTensor(other)

        def backward_fn(grad):
            self._accumulate(self._unbroadcast(grad, self.data.shape))
            other._accumulate(self._unbroadcast(grad, other.data.shape))

        return SeedTensor._make(self.data + other.data, (self, other), backward_fn)

    def __sub__(self, other):
        other = other if isinstance(other, SeedTensor) else SeedTensor(other)

        def backward_fn(grad):
            self._accumulate(self._unbroadcast(grad, self.data.shape))
            other._accumulate(self._unbroadcast(-grad, other.data.shape))

        return SeedTensor._make(self.data - other.data, (self, other), backward_fn)

    def __mul__(self, other):
        other = other if isinstance(other, SeedTensor) else SeedTensor(other)

        def backward_fn(grad):
            self._accumulate(self._unbroadcast(grad * other.data, self.data.shape))
            other._accumulate(self._unbroadcast(grad * self.data, other.data.shape))

        return SeedTensor._make(self.data * other.data, (self, other), backward_fn)

    def __matmul__(self, other):
        def backward_fn(grad):
            if self._tracked:
                self._accumulate(
                    self._unbroadcast(
                        grad @ np.swapaxes(other.data, -1, -2), self.data.shape
                    )
                )
            if other._tracked:
                other._accumulate(
                    self._unbroadcast(
                        np.swapaxes(self.data, -1, -2) @ grad, other.data.shape
                    )
                )

        return SeedTensor._make(self.data @ other.data, (self, other), backward_fn)

    def __pow__(self, exponent):
        def backward_fn(grad):
            self._accumulate(grad * exponent * self.data ** (exponent - 1))

        return SeedTensor._make(self.data**exponent, (self,), backward_fn)

    def sigmoid(self):
        out_data = np.where(
            self.data >= 0,
            1.0 / (1.0 + np.exp(-np.abs(self.data))),
            np.exp(-np.abs(self.data)) / (1.0 + np.exp(-np.abs(self.data))),
        )

        def backward_fn(grad):
            self._accumulate(grad * out_data * (1.0 - out_data))

        return SeedTensor._make(out_data, (self,), backward_fn)

    def tanh(self):
        out_data = np.tanh(self.data)

        def backward_fn(grad):
            self._accumulate(grad * (1.0 - out_data**2))

        return SeedTensor._make(out_data, (self,), backward_fn)

    def sum(self):
        def backward_fn(grad):
            self._accumulate(np.broadcast_to(grad, self.data.shape).copy())

        return SeedTensor._make(self.data.sum(), (self,), backward_fn)

    def __getitem__(self, index):
        out_data = np.array(self.data[index], copy=True)

        def backward_fn(grad):
            full = np.zeros_like(self.data)
            np.add.at(full, index, grad)
            self._accumulate(full)

        return SeedTensor._make(out_data, (self,), backward_fn)


def seed_stack(tensors: list[SeedTensor], axis: int = 0) -> SeedTensor:
    out_data = np.stack([t.data for t in tensors], axis=axis)

    def backward_fn(grad):
        slices = np.moveaxis(grad, axis, 0)
        for tensor, piece in zip(tensors, slices):
            tensor._accumulate(piece)

    return SeedTensor._make(out_data, tuple(tensors), backward_fn)


class SeedGRUCell:
    """Seed per-gate GRU cell; weights are injected (copied from the fused
    GRU under test so both sides run identical parameters)."""

    def __init__(self, gates: dict[str, np.ndarray]) -> None:
        for name, value in gates.items():
            setattr(self, name, SeedTensor(value, requires_grad=True))

    def parameters(self) -> list[SeedTensor]:
        return [
            getattr(self, name)
            for name in (
                "w_xr", "w_hr", "b_r", "w_xz", "w_hz", "b_z", "w_xn", "w_hn", "b_n",
            )
        ]

    def __call__(self, x: SeedTensor, h: SeedTensor) -> SeedTensor:
        r = (x @ self.w_xr + h @ self.w_hr + self.b_r).sigmoid()
        z = (x @ self.w_xz + h @ self.w_hz + self.b_z).sigmoid()
        n = (x @ self.w_xn + r * (h @ self.w_hn) + self.b_n).tanh()
        one = SeedTensor(np.ones_like(z.data))
        return (one - z) * n + z * h


def seed_gru_forward(cell: SeedGRUCell, x: SeedTensor, mask: np.ndarray | None) -> SeedTensor:
    """Seed GRU.forward: element-at-a-time unroll with mask-weighted carry."""
    batch, time, _ = x.data.shape
    hidden = cell.w_hr.data.shape[0]
    h = SeedTensor(np.zeros((batch, hidden)))
    outputs = []
    for t in range(time):
        x_t = x[:, t, :]
        h_new = cell(x_t, h)
        if mask is not None:
            m = np.asarray(mask[:, t], dtype=np.float64)[:, None]
            h = h_new * SeedTensor(m) + h * SeedTensor(1.0 - m)
        else:
            h = h_new
        outputs.append(h)
    return seed_stack(outputs, axis=1)


def _seed_annotators_of(matrix: np.ndarray) -> np.ndarray:
    return np.nonzero((matrix != MISSING).all(axis=0))[0]


def seed_sequence_update_confusions(qf, labels, num_annotators, num_classes, smoothing=0.01):
    """Seed token-level Eq. 12: per-sentence / per-annotator scatter loops."""
    K = num_classes
    counts = np.full((num_annotators, K, K), smoothing)
    for i, matrix in enumerate(labels):
        gamma = np.asarray(qf[i])
        for j in _seed_annotators_of(matrix):
            np.add.at(counts[j].T, matrix[:, j], gamma)
    return counts / counts.sum(axis=2, keepdims=True)


def seed_majority_vote_posterior(labels: np.ndarray, num_classes: int) -> np.ndarray:
    """Seed MV posterior: ``np.add.at`` vote scatter over the dense matrix."""
    I = labels.shape[0]
    counts = np.zeros((I, num_classes), dtype=np.int64)
    rows, cols = np.nonzero(labels != MISSING)
    np.add.at(counts, (rows, labels[rows, cols]), 1)
    counts = counts.astype(np.float64)
    totals = counts.sum(axis=1, keepdims=True)
    uniform = np.full((1, num_classes), 1.0 / num_classes)
    return np.where(totals > 0, counts / np.where(totals > 0, totals, 1.0), uniform)


def seed_one_hot(labels: np.ndarray, num_classes: int) -> np.ndarray:
    """Seed one-hot expansion: dense ``(I, J, K)`` with zero rows at MISSING."""
    out = np.zeros((labels.shape[0], labels.shape[1], num_classes))
    rows, cols = np.nonzero(labels != MISSING)
    out[rows, cols, labels[rows, cols]] = 1.0
    return out


def seed_dawid_skene(
    labels: np.ndarray,
    num_classes: int,
    max_iterations: int = 100,
    tolerance: float = 1e-6,
    smoothing: float = 0.01,
):
    """Seed DS EM: dense one-hot einsums every sweep (commit ``cf64a19``)."""
    one_hot = seed_one_hot(labels, num_classes)               # (I, J, K)
    posterior = seed_majority_vote_posterior(labels, num_classes)

    confusions = np.zeros((labels.shape[1], num_classes, num_classes))
    iterations_used = max_iterations
    for iteration in range(max_iterations):
        counts = np.einsum("im,ijn->jmn", posterior, one_hot) + smoothing
        confusions = counts / counts.sum(axis=2, keepdims=True)
        prior = posterior.sum(axis=0) + smoothing
        prior /= prior.sum()

        log_confusions = np.log(confusions)
        log_likelihood = np.einsum("ijn,jmn->im", one_hot, log_confusions)
        log_posterior = np.log(prior)[None, :] + log_likelihood
        log_posterior -= log_posterior.max(axis=1, keepdims=True)
        new_posterior = np.exp(log_posterior)
        new_posterior /= new_posterior.sum(axis=1, keepdims=True)

        delta = float(np.abs(new_posterior - posterior).max())
        posterior = new_posterior
        if delta < tolerance:
            iterations_used = iteration + 1
            break
    return posterior, confusions, iterations_used


def seed_forward_backward(log_emissions, log_transition, log_initial):
    """Seed per-chain scaled forward–backward (commit ``cf64a19``)."""
    T, K = log_emissions.shape
    emissions = np.exp(log_emissions - log_emissions.max(axis=1, keepdims=True))
    transition = np.exp(log_transition)
    initial = np.exp(log_initial - log_initial.max())
    initial /= initial.sum()

    alpha = np.zeros((T, K))
    scales = np.zeros(T)
    alpha[0] = initial * emissions[0]
    scales[0] = alpha[0].sum()
    alpha[0] /= scales[0]
    for t in range(1, T):
        alpha[t] = emissions[t] * (alpha[t - 1] @ transition)
        scales[t] = alpha[t].sum()
        if scales[t] <= 0:
            raise ValueError(f"chain has no support at position {t}")
        alpha[t] /= scales[t]

    beta = np.ones((T, K))
    for t in range(T - 2, -1, -1):
        beta[t] = transition @ (emissions[t + 1] * beta[t + 1])
        beta[t] /= max(beta[t].sum(), 1e-300)

    gamma = alpha * beta
    gamma /= gamma.sum(axis=1, keepdims=True)

    xi_sum = np.zeros((K, K))
    for t in range(T - 1):
        xi = (alpha[t][:, None] * transition) * (emissions[t + 1] * beta[t + 1])[None, :]
        total = xi.sum()
        if total > 0:
            xi_sum += xi / total

    log_likelihood = float(np.log(scales).sum() + log_emissions.max(axis=1).sum())
    return gamma, xi_sum, log_likelihood


def seed_sequence_posterior_qa(proba, labels, confusions):
    """Seed token-level Eq. 13: per-sentence Python loop."""
    log_confusions = np.log(confusions + 1e-300)
    out = []
    for i, matrix in enumerate(labels):
        p = np.asarray(proba[i], dtype=np.float64)
        log_posterior = np.log(p + 1e-300)
        for j in _seed_annotators_of(matrix):
            log_posterior = log_posterior + log_confusions[j][:, matrix[:, j]].T
        log_posterior -= log_posterior.max(axis=1, keepdims=True)
        posterior = np.exp(log_posterior)
        posterior /= posterior.sum(axis=1, keepdims=True)
        out.append(posterior)
    return out

def _seed_sigmoid(x: np.ndarray) -> np.ndarray:
    return np.where(
        x >= 0,
        1.0 / (1.0 + np.exp(-np.abs(x))),
        np.exp(-np.abs(x)) / (1.0 + np.exp(-np.abs(x))),
    )


def seed_glad(
    labels: np.ndarray,
    em_iterations: int = 30,
    gradient_steps: int = 20,
    learning_rate: float = 0.05,
    prior_correct: float = 0.5,
):
    """Pre-PR-3 GLAD: dense ``(I, J)`` masked scans every inner step."""
    I, J = labels.shape
    observed = labels != MISSING
    sign = np.where(observed, np.where(labels == 1, 1.0, -1.0), 0.0)

    alpha = np.ones(J)
    log_beta = np.zeros(I)
    posterior_one = np.full(I, prior_correct)

    for _ in range(em_iterations):
        strength = np.exp(log_beta)[:, None] * alpha[None, :]
        log_sig = np.log(_seed_sigmoid(strength) + 1e-12)
        log_one_minus = np.log(1.0 - _seed_sigmoid(strength) + 1e-12)
        log_like_one = np.where(observed, np.where(sign > 0, log_sig, log_one_minus), 0.0).sum(axis=1)
        log_like_zero = np.where(observed, np.where(sign < 0, log_sig, log_one_minus), 0.0).sum(axis=1)
        logit = (
            np.log(prior_correct) - np.log(1 - prior_correct)
            + log_like_one - log_like_zero
        )
        posterior_one = _seed_sigmoid(logit)

        for _ in range(gradient_steps):
            strength = np.exp(log_beta)[:, None] * alpha[None, :]
            sig = _seed_sigmoid(strength)
            prob_correct = np.where(
                sign > 0, posterior_one[:, None], 1.0 - posterior_one[:, None]
            )
            residual = np.where(observed, prob_correct - sig, 0.0)
            labels_per_annotator = np.maximum(observed.sum(axis=0), 1)
            labels_per_instance = np.maximum(observed.sum(axis=1), 1)
            grad_alpha = (residual * np.exp(log_beta)[:, None]).sum(axis=0) / labels_per_annotator
            grad_log_beta = (
                (residual * alpha[None, :]).sum(axis=1) * np.exp(log_beta)
            ) / labels_per_instance
            alpha += learning_rate * grad_alpha
            log_beta += learning_rate * grad_log_beta
            log_beta = np.clip(log_beta, -4.0, 4.0)
            alpha = np.clip(alpha, -8.0, 8.0)

    posterior = np.stack([1.0 - posterior_one, posterior_one], axis=1)
    return posterior, alpha, np.exp(log_beta)


def seed_pm(
    labels: np.ndarray,
    num_classes: int,
    max_iterations: int = 50,
    tolerance: float = 1e-6,
    floor: float = 1e-3,
):
    """Pre-PR-3 PM: dense one-hot einsums over ``(I, J, K)`` per sweep."""
    one_hot = seed_one_hot(labels, num_classes)
    observed = labels != MISSING
    counts = observed.sum(axis=0)
    posterior = seed_majority_vote_posterior(labels, num_classes)
    weights = np.ones(labels.shape[1])

    iterations_used = max_iterations
    for iteration in range(max_iterations):
        agreement = np.einsum("ijk,ik->ij", one_hot, posterior)
        per_annotator_agreement = np.where(observed, agreement, 0.0).sum(axis=0)
        error = 1.0 - per_annotator_agreement / np.maximum(counts, 1)
        error = np.clip(error, floor, 1.0 - floor)
        weights = -np.log(error)

        scores = np.einsum("j,ijk->ik", weights, one_hot)
        scores = np.maximum(scores, 0.0)
        totals = scores.sum(axis=1, keepdims=True)
        new_posterior = np.where(
            totals > 0, scores / np.where(totals > 0, totals, 1.0),
            np.full_like(scores, 1.0 / num_classes),
        )
        delta = float(np.abs(new_posterior - posterior).max())
        posterior = new_posterior
        if delta < tolerance:
            iterations_used = iteration + 1
            break
    return posterior, weights, iterations_used


def seed_catd(
    labels: np.ndarray,
    num_classes: int,
    max_iterations: int = 50,
    tolerance: float = 1e-6,
    alpha: float = 0.05,
):
    """Pre-PR-3 CATD: dense one-hot einsums over ``(I, J, K)`` per sweep."""
    from scipy import stats  # seed CATD required scipy, as the live one does

    one_hot = seed_one_hot(labels, num_classes)
    observed = labels != MISSING
    counts = observed.sum(axis=0)
    posterior = seed_majority_vote_posterior(labels, num_classes)
    chi_upper = stats.chi2.ppf(1.0 - alpha / 2.0, df=np.maximum(counts, 1))
    weights = np.ones(labels.shape[1])

    iterations_used = max_iterations
    for iteration in range(max_iterations):
        agreement = np.einsum("ijk,ik->ij", one_hot, posterior)
        error_sum = np.where(observed, 1.0 - agreement, 0.0).sum(axis=0)
        weights = chi_upper / np.maximum(error_sum, 1e-6)
        weights = weights / weights.max()

        scores = np.einsum("j,ijk->ik", weights, one_hot)
        totals = scores.sum(axis=1, keepdims=True)
        new_posterior = np.where(
            totals > 0, scores / np.where(totals > 0, totals, 1.0),
            np.full_like(scores, 1.0 / num_classes),
        )
        delta = float(np.abs(new_posterior - posterior).max())
        posterior = new_posterior
        if delta < tolerance:
            iterations_used = iteration + 1
            break
    return posterior, weights, iterations_used


def seed_conv1d_train_step(
    x: np.ndarray,
    weight: np.ndarray,
    bias: np.ndarray,
    width: int,
    pad: str = "same",
):
    """Pre-PR-3 im2col convolution, forward + backward of ``(out**2).sum()``.

    Both passes materialize the ``(B, T_out, width·D)`` window buffer —
    the memory expansion the width-loop variant removes. Returns
    ``(out, xgrad, wgrad, bgrad)``.
    """
    batch, time, dim = x.shape
    left = right = 0
    data = x
    if pad == "same":
        left = (width - 1) // 2
        right = width - 1 - left
        data = np.pad(data, ((0, 0), (left, right), (0, 0)))

    out_time = data.shape[1] - width + 1
    windows = np.lib.stride_tricks.sliding_window_view(data, (width,), axis=1)
    cols = np.ascontiguousarray(
        windows.transpose(0, 1, 3, 2).reshape(batch, out_time, width * dim)
    )
    out = cols @ weight + bias

    grad = 2.0 * out
    bgrad = grad.sum(axis=(0, 1))
    wgrad = np.einsum("btk,btf->kf", cols, grad)
    gcols = (grad @ weight.T).reshape(batch, out_time, width, dim)
    xgrad = np.zeros_like(data)
    for offset in range(width):
        xgrad[:, offset : offset + out_time, :] += gcols[:, :, offset, :]
    if pad == "same":
        xgrad = xgrad[:, left : left + time, :]
    return out, xgrad, wgrad, bgrad


def seed_streaming_full_recompute(
    label_blocks: list[np.ndarray],
    num_classes: int,
    max_iterations: int = 100,
    tolerance: float = 1e-6,
    smoothing: float = 0.01,
):
    """The seed-era answer to a label stream: per arriving block, stack
    everything seen so far and re-run the dense DS EM from scratch.

    A generator so the benchmark can time each update (``next()``) on its
    own — per-update cost grows with *total* observations, which is exactly
    what the streaming subsystem replaces. Yields the full
    ``(posterior, confusions, iterations)`` triple after every block.
    """
    for upto in range(1, len(label_blocks) + 1):
        stacked = np.concatenate(label_blocks[:upto], axis=0)
        yield seed_dawid_skene(
            stacked,
            num_classes,
            max_iterations=max_iterations,
            tolerance=tolerance,
            smoothing=smoothing,
        )
