"""Shared helpers for the benchmark harness.

Each bench regenerates one paper artifact (table or figure), prints it in
paper layout with paper-vs-measured columns, and archives the rendering
under ``benchmarks/results/``.

Environment knobs:

* ``REPRO_BENCH_SCALE`` — multiplies corpus sizes / seed counts (default 1).
* ``REPRO_BENCH_FAST=1`` — micro sizes for smoke-testing the harness.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"


def fast_mode() -> bool:
    return os.environ.get("REPRO_BENCH_FAST", "") == "1"


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture()
def archive(results_dir):
    """Callable: archive(name, text) → writes results/<name>.txt and prints."""

    def _archive(name: str, text: str) -> None:
        path = results_dir / f"{name}.txt"
        path.write_text(text + "\n")
        print()
        print(text)
        print(f"[archived to {path}]")

    return _archive
