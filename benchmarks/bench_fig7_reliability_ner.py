"""Figure 7 — annotator reliability estimated by Logic-LNCL (NER).

Fig. 7a shows estimated vs real 9×9 confusion matrices for the four most
active annotators; Fig. 7b scatters overall reliability over all
annotators, Pearson ≈0.911. The 9×9 matrices are summarized here by their
diagonals (per-class recall), which is the structure the paper's heatmaps
communicate.
"""

from __future__ import annotations

import numpy as np
from conftest import fast_mode

from repro.data import CONLL_LABELS
from repro.experiments import NERBenchConfig, bench_scale, run_fig7_ner


def _config() -> NERBenchConfig:
    if fast_mode():
        return NERBenchConfig(
            num_train=120, num_dev=40, num_test=40, num_annotators=10,
            epochs=4, conv_features=32, gru_hidden=16, embedding_dim=24,
        )
    scale = bench_scale()
    return NERBenchConfig(num_train=int(500 * scale), num_dev=150, num_test=150)


def _diag_block(estimated: np.ndarray, real: np.ndarray, annotator: int) -> list[str]:
    lines = [f"  annotator {annotator} (confusion diagonals):"]
    header = "    " + " ".join(f"{name:>7}" for name in CONLL_LABELS)
    lines.append(header)
    lines.append("    " + " ".join(f"{v:7.2f}" for v in np.diag(real)) + "   (real)")
    lines.append("    " + " ".join(f"{v:7.2f}" for v in np.diag(estimated)) + "   (estimated)")
    return lines


def _run_fig7():
    result = run_fig7_ner(_config(), seed=0)
    lines = [
        "=" * 100,
        "Figure 7 — annotator reliability estimated by Logic-LNCL (NER)",
        "=" * 100,
        "(a) most active annotators:",
    ]
    for i, annotator in enumerate(result.top_annotators):
        lines.extend(_diag_block(result.estimated_top[i], result.real_top[i], int(annotator)))
    lines.extend(
        [
            "-" * 100,
            f"(b) overall-reliability scatter: Pearson = {result.pearson:.4f} "
            f"(paper: {result.paper_pearson})",
            f"    mean absolute confusion error = {result.confusion_mae:.4f}",
            "=" * 100,
        ]
    )
    return "\n".join(lines), result


def test_fig7_reliability_ner(benchmark, archive):
    text, result = benchmark.pedantic(_run_fig7, rounds=1, iterations=1)
    archive("fig7_reliability_ner", text)
    assert result.pearson > 0.4
    assert result.confusion_mae < 0.3
