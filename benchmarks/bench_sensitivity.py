"""Design-choice sensitivity sweeps (DESIGN.md ablation targets).

Not a paper artifact — these probe the two hyper-parameters that *define*
the method's behaviour and that Table I fixes without justification:

* the regularization strength C of Eq. 14/15 (paper: 5.0 on both tasks);
* the imitation schedule k(t) of Eq. 9 (paper: an exponential ramp), vs
  constant mixing at several levels.

Expected shape: performance is flat-topped around C≈5 (too small ≈
w/o-Rule, too large over-trusts rules grounded on an immature classifier),
and the ramp matches or beats aggressive constant mixing because early-
epoch rule groundings use unreliable classifier predictions.
"""

from __future__ import annotations

import numpy as np
from conftest import fast_mode

from repro.core import LogicLNCLClassifier, constant, exponential_ramp, sentiment_paper_config
from repro.eval import accuracy, posterior_accuracy
from repro.experiments import SentimentBenchConfig, bench_scale, build_sentiment_data
from repro.experiments.sentiment_suite import _cnn
from repro.logic import ButRule


def _config() -> SentimentBenchConfig:
    if fast_mode():
        return SentimentBenchConfig(
            num_train=250, num_dev=80, num_test=80, num_annotators=20,
            epochs=4, feature_maps=12, embedding_dim=24, seeds=(0,),
        )
    scale = bench_scale()
    return SentimentBenchConfig(
        num_train=int(900 * scale), num_dev=250, num_test=250, epochs=12,
        seeds=tuple(range(max(2, int(2 * scale)))),
    )


def _run_variant(task, config, seed, C, imitation):
    lncl = sentiment_paper_config(epochs=config.epochs)
    lncl.C = C
    lncl.imitation = imitation
    trainer = LogicLNCLClassifier(
        _cnn(task, config, seed), lncl, np.random.default_rng(seed + 2000),
        rule=ButRule(task.but_id),
    )
    trainer.fit(task.train, dev=task.dev)
    test = task.test
    return {
        "prediction": accuracy(
            test.labels, trainer.predict_teacher(test.tokens, test.lengths)
        ),
        "inference": posterior_accuracy(task.train.labels, trainer.inference_posterior()),
    }


def _run_sensitivity():
    config = _config()
    tasks = {seed: build_sentiment_data(seed, config) for seed in config.seeds}
    lines = [
        "=" * 88,
        "Sensitivity of Logic-LNCL to C (Eq. 15) and k(t) (Eq. 9) — sentiment, teacher",
        "=" * 88,
        f"{'variant':<34}{'prediction':>12}{'inference':>12}",
        "-" * 88,
    ]
    results = {}
    sweeps = [
        (f"C={c}, paper ramp", c, exponential_ramp(1.0, 0.94)) for c in (0.5, 2.0, 5.0, 10.0)
    ] + [
        (f"C=5, constant k={k}", 5.0, constant(k)) for k in (0.1, 0.5, 0.9)
    ]
    for label, C, imitation in sweeps:
        runs = [_run_variant(tasks[s], config, s, C, imitation) for s in config.seeds]
        prediction = float(np.mean([r["prediction"] for r in runs]))
        inference = float(np.mean([r["inference"] for r in runs]))
        results[label] = {"prediction": prediction, "inference": inference}
        lines.append(f"{label:<34}{100 * prediction:>12.2f}{100 * inference:>12.2f}")
    lines.append("-" * 88)
    lines.append("paper setting: C=5 with k(t)=min{1, 1-0.94^t}")
    lines.append("=" * 88)
    return "\n".join(lines), results


def test_sensitivity(benchmark, archive):
    text, results = benchmark.pedantic(_run_sensitivity, rounds=1, iterations=1)
    archive("sensitivity", text)
    for result in results.values():
        assert 0.0 <= result["prediction"] <= 1.0
        assert 0.0 <= result["inference"] <= 1.0
