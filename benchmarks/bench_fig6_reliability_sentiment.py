"""Figure 6 — annotator reliability estimated by Logic-LNCL (sentiment).

Fig. 6a compares estimated vs real confusion matrices for the six most
active annotators; Fig. 6b scatters estimated vs real overall reliability
over all annotators with more than five labels, annotated with a Pearson
correlation of ≈0.923. This bench prints both and checks the correlation
is strongly positive.
"""

from __future__ import annotations

import numpy as np
from conftest import fast_mode

from repro.experiments import SentimentBenchConfig, bench_scale, run_fig6_sentiment


def _config() -> SentimentBenchConfig:
    if fast_mode():
        return SentimentBenchConfig(
            num_train=250, num_dev=80, num_test=80, num_annotators=20,
            epochs=4, feature_maps=12, embedding_dim=24,
        )
    scale = bench_scale()
    return SentimentBenchConfig(num_train=int(1200 * scale), num_dev=300, num_test=300)


def _matrix_block(estimated: np.ndarray, real: np.ndarray, annotator: int) -> list[str]:
    lines = [f"  annotator {annotator}:   real            estimated"]
    for row in range(estimated.shape[0]):
        real_cells = " ".join(f"{v:.2f}" for v in real[row])
        est_cells = " ".join(f"{v:.2f}" for v in estimated[row])
        lines.append(f"    [{real_cells}]    [{est_cells}]")
    return lines


def _run_fig6():
    result = run_fig6_sentiment(_config(), seed=0)
    lines = [
        "=" * 88,
        "Figure 6 — annotator reliability estimated by Logic-LNCL (sentiment)",
        "=" * 88,
        "(a) confusion matrices of the most active annotators (real vs estimated):",
    ]
    for i, annotator in enumerate(result.top_annotators):
        lines.extend(_matrix_block(result.estimated_top[i], result.real_top[i], int(annotator)))
    lines.extend(
        [
            "-" * 88,
            f"(b) overall-reliability scatter: Pearson = {result.pearson:.4f} "
            f"(paper: {result.paper_pearson})",
            f"    mean absolute confusion error = {result.confusion_mae:.4f}",
            "=" * 88,
        ]
    )
    return "\n".join(lines), result


def test_fig6_reliability_sentiment(benchmark, archive):
    text, result = benchmark.pedantic(_run_fig6, rounds=1, iterations=1)
    archive("fig6_reliability_sentiment", text)
    assert result.pearson > 0.5
    assert result.confusion_mae < 0.25
