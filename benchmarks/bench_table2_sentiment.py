"""Table II — Sentiment Polarity (MTurk): prediction and inference accuracy.

Regenerates every row of the paper's Table II on the simulated sentiment
crowd: two-stage methods, probabilistic EM methods, the CrowdLayer family,
Logic-LNCL student/teacher, the pure truth-inference block, and Gold.

Absolute numbers differ from the paper (simulated data, scaled sizes); the
*shape* must hold: Logic-LNCL ≥ competitors on both metrics, teacher ≥
student, model-based inference (DS/GLAD/EM) ≥ MV.
"""

from __future__ import annotations

from conftest import fast_mode

from repro.experiments import (
    PAPER_TABLE2,
    SENTIMENT_INFERENCE_METHODS,
    SENTIMENT_METHODS,
    Row,
    SentimentBenchConfig,
    Table,
    aggregate_runs,
    bench_scale,
    build_sentiment_data,
    run_sentiment_inference_method,
    run_sentiment_method,
)


def _config() -> SentimentBenchConfig:
    if fast_mode():
        return SentimentBenchConfig(
            num_train=250, num_dev=80, num_test=80, num_annotators=20,
            epochs=4, feature_maps=12, embedding_dim=24, seeds=(0,),
        )
    scale = bench_scale()
    return SentimentBenchConfig(
        num_train=int(1200 * scale),
        num_dev=int(300 * scale),
        num_test=int(300 * scale),
        seeds=tuple(range(max(2, int(3 * scale)))),
    )


def _run_table2() -> Table:
    config = _config()
    table = Table(
        title="Table II — Sentiment Polarity (MTurk): accuracy (%)",
        metrics=["prediction", "inference"],
        notes=[
            f"simulated crowd: {config.num_train} train / {config.num_annotators} annotators / "
            f"{config.mean_labels_per_instance} labels per instance; "
            f"{len(config.seeds)} seeds x {config.epochs} epochs",
            "paper columns: 4,999 train / 203 annotators / 50 runs on a V100",
        ],
    )
    tasks = {seed: build_sentiment_data(seed, config) for seed in config.seeds}
    per_method_runs: dict[str, list[dict[str, float]]] = {}
    for name in SENTIMENT_METHODS:
        runs = [run_sentiment_method(name, tasks[seed], config, seed) for seed in config.seeds]
        per_method_runs[name] = runs
        mean, std = aggregate_runs(runs)
        table.add(Row(name, mean, std, PAPER_TABLE2.get(name, {})))
    for name in SENTIMENT_INFERENCE_METHODS:
        runs = [run_sentiment_inference_method(name, tasks[seed]) for seed in config.seeds]
        mean, std = aggregate_runs(runs)
        table.add(Row(name, mean, std, PAPER_TABLE2.get(name, {})))

    # Paper §VI-B: one-sided t-tests of Logic-LNCL vs the strongest
    # competitor (AggNet) over seeded runs. With few bench seeds the test
    # is underpowered; the t direction is still informative.
    if len(config.seeds) >= 2:
        import numpy as np

        from repro.eval import one_sided_t_test

        aggnet = np.array([run["prediction"] for run in per_method_runs["AggNet"]])
        for variant in ("Logic-LNCL-student", "Logic-LNCL-teacher"):
            ours = np.array([run["prediction"] for run in per_method_runs[variant]])
            result = one_sided_t_test(ours, aggnet)
            table.notes.append(
                f"t-test {variant} > AggNet (prediction): t={result.t_value:.2f}, "
                f"p={result.p_value:.3f} (paper: t=3.0/5.7, p<0.01 over 50 runs)"
            )
    return table


def test_table2_sentiment(benchmark, archive):
    table = benchmark.pedantic(_run_table2, rounds=1, iterations=1)
    archive("table2_sentiment", table.render())

    # Shape checks (loose; see EXPERIMENTS.md for the recorded comparison).
    for row in table.rows:
        for value in row.measured.values():
            assert 0.0 <= value <= 1.0
    # Logic-LNCL inference must at least match the MV initialization.
    assert table.measured("Logic-LNCL-teacher", "inference") >= table.measured("MV", "inference") - 0.02
    # Gold is a meaningful upper-ish bound for prediction.
    assert table.measured("Gold", "prediction") > 0.55
