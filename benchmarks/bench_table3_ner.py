"""Table III — CoNLL-2003 NER (MTurk): strict span P/R/F1.

Regenerates the paper's Table III rows on the simulated NER crowd:
MV-Classifier, AggNet, the CrowdLayer family (5 vs 1 pre-training epochs),
Logic-LNCL student/teacher, the sequence truth-inference block, and Gold.

Shape expectations: one-stage methods beat the two-stage MV-Classifier;
Logic-LNCL tops the F1 columns with teacher ≥ student; CL (MW, 1)
degrades sharply versus CL (MW, 5); sequential inference (HMM-Crowd,
BSC-seq) beats token MV.
"""

from __future__ import annotations

from conftest import fast_mode

from repro.experiments import (
    NER_INFERENCE_METHODS,
    NER_METHODS,
    PAPER_TABLE3,
    NERBenchConfig,
    Row,
    Table,
    aggregate_runs,
    bench_scale,
    build_ner_data,
    run_ner_inference_method,
    run_ner_method,
)


def _config() -> NERBenchConfig:
    if fast_mode():
        return NERBenchConfig(
            num_train=120, num_dev=40, num_test=40, num_annotators=10,
            epochs=4, conv_features=32, gru_hidden=16, embedding_dim=24, seeds=(0,),
        )
    scale = bench_scale()
    return NERBenchConfig(
        num_train=int(500 * scale),
        num_dev=int(150 * scale),
        num_test=int(150 * scale),
        seeds=tuple(range(max(2, int(2 * scale)))),
    )


def _run_table3() -> Table:
    config = _config()
    table = Table(
        title="Table III — CoNLL-2003 NER (MTurk): strict span precision/recall/F1 (%)",
        metrics=["precision", "recall", "f1", "inf_precision", "inf_recall", "inf_f1"],
        notes=[
            f"simulated crowd: {config.num_train} train sentences / {config.num_annotators} "
            f"annotators; {len(config.seeds)} seeds x {config.epochs} epochs",
            "paper columns: 5,985 sentences / 47 annotators / 30 runs",
        ],
    )
    tasks = {seed: build_ner_data(seed, config) for seed in config.seeds}
    for name in NER_METHODS:
        runs = [run_ner_method(name, tasks[seed], config, seed) for seed in config.seeds]
        mean, std = aggregate_runs(runs)
        table.add(Row(name, mean, std, PAPER_TABLE3.get(name, {})))
    for name in NER_INFERENCE_METHODS:
        runs = [run_ner_inference_method(name, tasks[seed]) for seed in config.seeds]
        mean, std = aggregate_runs(runs)
        table.add(Row(name, mean, std, PAPER_TABLE3.get(name, {})))
    return table


def test_table3_ner(benchmark, archive):
    table = benchmark.pedantic(_run_table3, rounds=1, iterations=1)
    archive("table3_ner", table.render())

    for row in table.rows:
        for value in row.measured.values():
            assert 0.0 <= value <= 1.0
    if not fast_mode():
        # Sequential aggregation must not lose to token-level MV.
        assert table.measured("HMM-Crowd", "inf_f1") >= table.measured("MV", "inf_f1") - 0.03
        # Logic-LNCL inference must improve on the MV initialization.
        assert (
            table.measured("Logic-LNCL-teacher", "inf_f1")
            >= table.measured("MV", "inf_f1") - 0.02
        )
