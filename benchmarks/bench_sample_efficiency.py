"""§VI-B sample-efficiency experiment.

The paper: Logic-LNCL reaches (and slightly exceeds) the strongest
competitor's full-data generalization using fewer training samples —
4,300/3,300 of 4,999 sentiment samples and 5,700/4,900 of 5,985 NER
sentences for the student/teacher variants.

This bench sweeps training fractions and reports, per variant, the sample
count at which it matches the full-data score of the strongest competitor
(AggNet for sentiment, CL (MW, 5) for NER).
"""

from __future__ import annotations

from conftest import fast_mode

from repro.experiments import (
    NERBenchConfig,
    SentimentBenchConfig,
    bench_scale,
    run_ner_sample_efficiency,
    run_sentiment_sample_efficiency,
)

FRACTIONS = [0.5, 0.7, 0.85, 1.0]


def _configs():
    if fast_mode():
        return (
            SentimentBenchConfig(num_train=250, num_dev=80, num_test=80, num_annotators=20,
                                 epochs=4, feature_maps=12, embedding_dim=24),
            NERBenchConfig(num_train=120, num_dev=40, num_test=40, num_annotators=10,
                           epochs=4, conv_features=32, gru_hidden=16, embedding_dim=24),
        )
    scale = bench_scale()
    # NER sizes match the Table III bench: the CL (MW, 5) reference needs
    # the full epoch budget to train through its pre-training phase.
    return (
        SentimentBenchConfig(num_train=int(900 * scale), num_dev=250, num_test=250, epochs=12),
        NERBenchConfig(num_train=int(500 * scale), num_dev=150, num_test=150, epochs=12),
    )


def _render(label, result, total, reference_method) -> list[str]:
    lines = [f"{label} (reference = {reference_method} on full data: "
             f"{100 * result.full_data_reference[reference_method]:.2f}):"]
    for method, scores in result.scores.items():
        curve = "  ".join(
            f"{int(round(f * total))}->{100 * s:.2f}" for f, s in zip(result.fractions, scores)
        )
        match = result.samples_to_match(method, reference_method, total)
        match_text = f"matches at ~{match} samples" if match else "never matches"
        lines.append(f"  {method:<22} {curve}   [{match_text}]")
    return lines


def _run_sample_efficiency():
    sent_config, ner_config = _configs()
    sent = run_sentiment_sample_efficiency(
        sent_config, FRACTIONS,
        methods=["Logic-LNCL-student", "Logic-LNCL-teacher"],
        reference_method="AggNet",
    )
    ner = run_ner_sample_efficiency(
        ner_config, FRACTIONS,
        methods=["Logic-LNCL-student", "Logic-LNCL-teacher"],
        reference_method="CL (MW, 5)",
    )
    lines = [
        "=" * 100,
        "Sample efficiency (paper §VI-B): score vs number of training samples",
        "=" * 100,
    ]
    lines.extend(_render("Sentiment (accuracy %)", sent, sent_config.num_train, "AggNet"))
    lines.append("-" * 100)
    lines.extend(_render("NER (span F1 %)", ner, ner_config.num_train, "CL (MW, 5)"))
    lines.extend(
        [
            "-" * 100,
            "paper: student/teacher match the best competitor with 4300/3300 of 4999",
            "       sentiment samples and 5700/4900 of 5985 NER sentences",
            "=" * 100,
        ]
    )
    return "\n".join(lines), sent, ner


def test_sample_efficiency(benchmark, archive):
    text, sent, ner = benchmark.pedantic(_run_sample_efficiency, rounds=1, iterations=1)
    archive("sample_efficiency", text)
    for result in (sent, ner):
        for scores in result.scores.values():
            assert all(0.0 <= s <= 1.0 for s in scores)
