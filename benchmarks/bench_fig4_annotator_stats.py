"""Figure 4 — crowd characterization boxplots.

The paper's Fig. 4 shows, for both datasets, boxplots of (a) the number of
instances each annotator labeled and (b) each annotator's accuracy (resp.
span F1). This bench prints the five-number summaries for the simulated
crowds so they can be compared against the paper's plots: heavy-tailed
volume, accuracy spread roughly 0.2–1.0 with a median near 0.8 for
sentiment, and F1 roughly 0.15–0.9 for NER.
"""

from __future__ import annotations

from conftest import fast_mode

from repro.crowd import classification_annotator_report, sequence_annotator_report
from repro.experiments import (
    NERBenchConfig,
    SentimentBenchConfig,
    bench_scale,
    build_ner_data,
    build_sentiment_data,
)


def _configs():
    if fast_mode():
        return (
            SentimentBenchConfig(num_train=250, num_dev=20, num_test=20,
                                 num_annotators=20, embedding_dim=24),
            NERBenchConfig(num_train=120, num_dev=10, num_test=10,
                           num_annotators=10, embedding_dim=24),
        )
    scale = bench_scale()
    return (
        SentimentBenchConfig(num_train=int(2000 * scale), num_dev=50, num_test=50,
                             num_annotators=int(100 * scale)),
        NERBenchConfig(num_train=int(800 * scale), num_dev=20, num_test=20,
                       num_annotators=int(30 * scale)),
    )


def _run_fig4() -> str:
    sent_config, ner_config = _configs()
    sent = build_sentiment_data(0, sent_config)
    ner = build_ner_data(0, ner_config)
    sent_report = classification_annotator_report(sent.train.crowd, sent.train.labels)
    ner_report = sequence_annotator_report(ner.train.crowd, ner.train.tags)

    lines = [
        "=" * 88,
        "Figure 4 — annotator statistics (boxplot five-number summaries)",
        "=" * 88,
        "Sentiment Polarity (MTurk, simulated):",
        f"  (a) instances per annotator : {sent_report.count_stats().row()}",
        f"  (b) annotator accuracy      : {sent_report.quality_stats(min_labels=6).row()}",
        "  paper: volume heavy-tailed up to ~4k; accuracy ~0.2-1.0, median ~0.8",
        "-" * 88,
        "CoNLL-2003 NER (MTurk, simulated):",
        f"  (a) sentences per annotator : {ner_report.count_stats().row()}",
        f"  (b) annotator span F1       : {ner_report.quality_stats().row()}",
        "  paper: F1 range 17.60%-89.11%",
        "=" * 88,
    ]
    return "\n".join(lines), sent_report, ner_report


def test_fig4_annotator_stats(benchmark, archive):
    text, sent_report, ner_report = benchmark.pedantic(_run_fig4, rounds=1, iterations=1)
    archive("fig4_annotator_stats", text)

    # Shape checks against the paper's characterization.
    active = sent_report.counts >= 6
    quality = sent_report.quality[active]
    assert quality.max() > 0.85          # experts exist
    assert quality.min() < 0.65          # spammers exist
    counts = sent_report.counts[sent_report.counts > 0]
    assert counts.max() / max(counts.min(), 1) > 5  # heavy tail
    ner_quality = ner_report.quality[ner_report.counts >= 3]
    assert ner_quality.max() > 0.6
    # Wide quality band (small pools may not draw the very worst profile).
    assert ner_quality.min() < ner_quality.max() - 0.2
