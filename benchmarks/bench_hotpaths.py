"""Hot-path microbenchmarks with a tracked JSON trajectory.

Times the runtime-dominating kernels of the crowd tracks against their
frozen seed-commit implementations (``seed_baseline.py``):

* **gru** — one training step (forward + backward through a squared loss)
  of the fused packed GRU layer vs. the seed per-gate time loop, identical
  weights and data, at the paper's tagger scale (B=32, T=50, H=50,
  D=conv features).
* **sequence_em** — one Logic-LNCL pseudo-E/M round (token-level Eq. 12
  confusion update + Eq. 13 posterior) vectorized vs. the seed
  per-sentence/per-annotator loops, J=47 annotators as in the CoNLL AMT
  crowd.
* **dawid_skene** — classic DS EM on a synthetic classification crowd:
  sparse-COO kernels (``repro.inference.primitives``) vs. the seed's
  dense ``(I, J, K)`` one-hot einsums, at the paper's sentiment-crowd
  scale mapped to the NER tag set (I=2000, J=47, K=9).
* **forward_backward** — one HMM-Crowd/BSC-seq E-round: the batched
  length-masked forward–backward over padded ``(I, T_max, K)`` emissions
  vs. the seed per-chain Python loop (I=300, T≤50, K=9).
* **glad** — full GLAD EM (E-steps + inner gradient ascent) on the COO
  triples vs. the pre-PR-3 dense ``(I, J)`` masked scans, at the
  sentiment-crowd scale with the CoNLL AMT annotator count (I=2000,
  J=47, binary).
* **pm_catd** — one full PM run plus one full CATD run on the shared
  ``annotator_agreement``/``weighted_vote_scores`` kernels vs. the
  pre-PR-3 dense ``(I, J, K)`` one-hot einsums (I=2000, J=47, K=9).
* **conv1d** — one width-5 conv training step (forward + backward) via
  the width-loop variant vs. the pre-PR-3 im2col path that materializes
  the ``(B, T_out, width·D)`` window buffer, at the tagger's embedding
  scale (B=32, T=50, D=300). The headline here is the removed buffer
  (``buffer_bytes_avoided``), not the speedup.
* **streaming** — a label stream ingested end to end: stepwise-EM
  streaming DS (``partial_fit`` + result assembly per batch) vs. the
  naive seed-era loop that re-runs the full dense DS EM from scratch
  after every batch. Alongside the total-stream speedup it records
  first-vs-last per-update costs for both sides — the streaming side's
  update cost scales with the batch, the naive side's with everything
  seen so far. Equivalence: replaying the stream with no decay and
  converging must reproduce the full-crowd DS posterior (atol 1e-8, the
  streaming replay contract).

* **dtype** — float64 (reference) vs float32 (fast path) training epochs
  of the two paper networks: a Kim TextCNN sentiment epoch
  (``run_classification_epoch``) and a CNN+GRU tagger epoch
  (``run_sequence_epoch``), same seeds both sides so the float32 model's
  weights are exactly the rounded float64 draws. Reports epoch wall
  clock, ``tracemalloc`` peak memory for the training step (the tape +
  activations dominate), and the max abs initial-logits difference
  between the twins (gated at 1e-2 — a correctness check that the fast
  path computes the same network, not a tolerance for sloppiness).

* **sharded** — in-memory batch DS vs. *out-of-core* sharded DS
  (``repro.inference.sharding``): the label matrix lives on disk as COO
  triples, each EM round lazily materializes one
  ``SparseLabelShard`` at a time from a memmap, maps it to mergeable
  ``ShardStats``, and reduces before the global M-step. Reports wall
  clock both sides plus ``tracemalloc`` peak memory: the sharded side's
  peak is bounded by the largest shard (plus the O(I·K) posterior), not
  the whole crowd. Two scales: the headline entry runs at serving scale
  (I=20000), where the per-pass shard-rebuild tax amortizes to ~1.2× of
  batch wall clock; the nested ``paper_scale`` entry runs the paper's
  sentiment-crowd scale (I=2000), where numpy's fixed per-call overheads
  on shard-sized arrays dominate (~1.5× at 2 shards — recorded, not
  hidden). Equivalence: identical EM at atol 1e-9 (per-shard partial
  sums regroup floating-point additions; same contract the equivalence
  harness pins at 1e-10 on smaller crowds).

* **sharded_parallel** — multi-core sharded DS over *on-disk shard
  handles*: the crowd is written once as a row-sorted shard file,
  ``ShardHandle`` row ranges go to a ``ProcessPoolExecutor``, workers
  memmap the file themselves, and per-round model state is broadcast
  once per pass. Sweeps worker counts (``--workers``, default 1/2/4
  full) against in-memory batch DS and single-process sharded DS at
  I=1e5, where per-round compute dwarfs the submit/broadcast overhead.
  Every parallel run must be *bit-identical* to the serial sharded run
  (deterministic tree reduce), and serial sharded must match batch at
  1e-9. The >2×-vs-batch target assumes ≥4 physical cores; the payload
  records ``cpu_count`` so numbers from a smaller box read as what they
  are.

* **serving** — a :class:`~repro.serving.service.CrowdService` absorbing
  the bursty many-dataset schedule of :mod:`repro.serving.workload`
  (burst/dribble/quiet arrivals interleaved with Poisson query traffic)
  under a resident budget a fraction of the dataset count, so LRU
  eviction churn is part of the measured path. Reports sustained
  updates/sec plus p50/p99 query latency, and the service's
  eviction/rehydration/checkpoint counters. Unlike the other sections
  there is no seed twin — the subsystem is new — so the gate is the
  recovery contract instead: before anything is timed, a mid-schedule
  checkpoint + simulated crash + restart + per-dataset tail replay must
  reproduce uninterrupted per-dataset streams at 1e-10.

Both sides of each comparison run interleaved in the same process,
best-of-N, because this box's wall-clock is noisy. Sentence lengths are
drawn geometric with mean ≈14.5 tokens (CoNLL-2003-like) and padded to
T=50, which is the workload the packed GRU and masked losses actually see.

Usage::

    PYTHONPATH=src python benchmarks/bench_hotpaths.py            # full
    PYTHONPATH=src python benchmarks/bench_hotpaths.py --smoke    # <30 s
    ... [--output BENCH_hotpaths.json] [--repeats N] [--tag pr2]

Writes ``BENCH_hotpaths.json`` at the repo root by default; with
``--tag <name>`` a full (non-smoke) run is also archived to
``benchmarks/history/<name>.json`` so the per-PR trend line survives the
next overwrite. Exits nonzero on any equivalence failure (before/after
disagreeing is a correctness bug, not a perf datum).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile
import time
import tracemalloc
from concurrent.futures import ProcessPoolExecutor
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent))
sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from seed_baseline import (  # noqa: E402
    MISSING,
    SeedGRUCell,
    SeedTensor,
    seed_catd,
    seed_conv1d_train_step,
    seed_dawid_skene,
    seed_forward_backward,
    seed_glad,
    seed_gru_forward,
    seed_pm,
    seed_sequence_posterior_qa,
    seed_sequence_update_confusions,
    seed_streaming_full_recompute,
)

from repro.autodiff import Tensor, functional as F, no_grad  # noqa: E402
from repro.autodiff.nn.rnn import GRU  # noqa: E402
from repro.baselines.common import (  # noqa: E402
    TrainerConfig,
    build_optimizer,
    run_classification_epoch,
    run_sequence_epoch,
)
from repro.models import (  # noqa: E402
    NERTagger,
    NERTaggerConfig,
    TextCNN,
    TextCNNConfig,
)
from repro.core.em import (  # noqa: E402
    sequence_posterior_qa,
    sequence_update_confusions,
)
from repro.crowd.sharding import (  # noqa: E402
    SparseLabelShard,
    partition_bounds,
    save_shard_handles,
)
from repro.crowd.types import CrowdLabelMatrix, SequenceCrowdLabels  # noqa: E402
from repro.inference.catd import CATD  # noqa: E402
from repro.inference.dawid_skene import DawidSkene, ShardedDawidSkene  # noqa: E402
from repro.inference.glad import GLAD  # noqa: E402
from repro.inference.pm import PM  # noqa: E402
from repro.experiments.streaming_suite import StreamScenarioConfig  # noqa: E402
from repro.inference.primitives import batched_forward_backward  # noqa: E402
from repro.inference.streaming import StreamingDawidSkene  # noqa: E402
from repro.serving import CrowdService, build_serving_workload  # noqa: E402

REPO_ROOT = Path(__file__).resolve().parent.parent
HISTORY_DIR = Path(__file__).resolve().parent / "history"


def conll_like_lengths(rng: np.random.Generator, n: int, t_max: int) -> np.ndarray:
    """Geometric lengths, mean ≈14.5 (CoNLL-2003), clipped to [1, t_max];
    one row pinned at t_max (batches are padded to their longest sentence)."""
    lengths = np.minimum(np.maximum(rng.geometric(1.0 / 14.5, size=n), 1), t_max)
    lengths[0] = t_max
    return lengths


def best_of(fn, repeats: int) -> float:
    """Minimum wall-clock seconds over ``repeats`` calls (noise-robust)."""
    best = np.inf
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


# --------------------------------------------------------------------- #
# GRU forward+backward
# --------------------------------------------------------------------- #
def bench_gru(batch, t_max, hidden, in_dim, repeats, rng) -> dict:
    gru = GRU(in_dim, hidden, np.random.default_rng(42))
    x = rng.normal(size=(batch, t_max, in_dim))
    lengths = conll_like_lengths(rng, batch, t_max)
    mask = np.arange(t_max)[None, :] < lengths[:, None]

    # Seed cell shares the fused weights, sliced per gate.
    H = hidden
    gates = {}
    for index, gate in enumerate("rzn"):
        gates[f"w_x{gate}"] = gru.w_x.data[:, index * H : (index + 1) * H].copy()
        gates[f"w_h{gate}"] = gru.w_h.data[:, index * H : (index + 1) * H].copy()
        gates[f"b_{gate}"] = gru.bias.data[index * H : (index + 1) * H].copy()
    seed_cell = SeedGRUCell(gates)

    def run_fused():
        out = gru(Tensor(x, requires_grad=True), mask=mask)
        (out**2).sum().backward()
        return out.numpy()

    def run_seed():
        for p in seed_cell.parameters():
            p.zero_grad()
        out = seed_gru_forward(seed_cell, SeedTensor(x, requires_grad=True), mask)
        (out**2).sum().backward()
        return out.data

    fused_out = run_fused()
    seed_out = run_seed()
    max_diff = float(np.abs(fused_out - seed_out).max())
    if max_diff > 1e-10:
        raise AssertionError(f"fused GRU diverged from seed GRU: {max_diff}")

    fused_s, seed_s = np.inf, np.inf
    for _ in range(repeats):  # interleave to share machine-noise windows
        fused_s = min(fused_s, best_of(run_fused, 1))
        seed_s = min(seed_s, best_of(run_seed, 1))
    return {
        "config": {"B": batch, "T": t_max, "H": hidden, "D": in_dim,
                   "lengths": "geometric(mean≈14.5) clipped to T"},
        "before_ms": seed_s * 1e3,
        "after_ms": fused_s * 1e3,
        "speedup": seed_s / fused_s,
        "max_abs_diff": max_diff,
    }


# --------------------------------------------------------------------- #
# Logic-LNCL sequence pseudo-E/M round
# --------------------------------------------------------------------- #
def make_sequence_crowd(rng, instances, annotators, classes, t_max, per_sentence):
    labels = []
    for _ in range(instances):
        t = int(np.minimum(np.maximum(rng.geometric(1.0 / 14.5), 1), t_max))
        matrix = np.full((t, annotators), MISSING, dtype=np.int64)
        chosen = rng.choice(annotators, size=per_sentence, replace=False)
        for j in chosen:
            matrix[:, j] = rng.integers(0, classes, size=t)
        labels.append(matrix)
    return SequenceCrowdLabels(labels, classes, annotators)


def bench_sequence_em(instances, annotators, classes, t_max, repeats, rng) -> dict:
    crowd = make_sequence_crowd(rng, instances, annotators, classes, t_max, per_sentence=5)
    qf = [rng.dirichlet(np.ones(classes), size=m.shape[0]) for m in crowd.labels]
    proba = [rng.dirichlet(np.ones(classes), size=m.shape[0]) for m in crowd.labels]

    def run_vectorized():
        confusions = sequence_update_confusions(qf, crowd)
        return confusions, sequence_posterior_qa(proba, crowd, confusions)

    def run_seed():
        confusions = seed_sequence_update_confusions(
            qf, crowd.labels, annotators, classes
        )
        return confusions, seed_sequence_posterior_qa(proba, crowd.labels, confusions)

    conf_new, post_new = run_vectorized()
    conf_old, post_old = run_seed()
    max_diff = float(
        max(
            np.abs(conf_new - conf_old).max(),
            max(np.abs(a - b).max() for a, b in zip(post_new, post_old)),
        )
    )
    if max_diff > 1e-10:
        raise AssertionError(f"vectorized EM diverged from seed loops: {max_diff}")

    vec_s, seed_s = np.inf, np.inf
    for _ in range(repeats):
        vec_s = min(vec_s, best_of(run_vectorized, 1))
        seed_s = min(seed_s, best_of(run_seed, 1))
    return {
        "config": {"I": instances, "J": annotators, "K": classes, "T_max": t_max,
                   "annotators_per_sentence": 5},
        "before_ms": seed_s * 1e3,
        "after_ms": vec_s * 1e3,
        "speedup": seed_s / vec_s,
        "max_abs_diff": max_diff,
    }


# --------------------------------------------------------------------- #
# Dawid–Skene EM: sparse COO kernels vs. seed dense one-hot einsums
# --------------------------------------------------------------------- #
def make_classification_labels(rng, instances, annotators, classes, per_instance=3):
    """Synthetic crowd at fixed redundancy, shared by the DS/GLAD/PM/CATD
    benches (3 labels per instance, 70% annotator accuracy)."""
    labels = np.full((instances, annotators), MISSING, dtype=np.int64)
    truth = rng.integers(0, classes, size=instances)
    for i in range(instances):
        chosen = rng.choice(annotators, size=per_instance, replace=False)
        noisy = np.where(
            rng.random(per_instance) < 0.7,
            truth[i],
            rng.integers(0, classes, size=per_instance),
        )
        labels[i, chosen] = noisy
    return labels


def bench_dawid_skene(instances, annotators, classes, iterations, repeats, rng) -> dict:
    labels = make_classification_labels(rng, instances, annotators, classes)
    crowd = CrowdLabelMatrix(labels, classes)
    method = DawidSkene(max_iterations=iterations, tolerance=0.0)

    def run_vectorized():
        return method.infer(crowd)

    def run_seed():
        return seed_dawid_skene(labels, classes, max_iterations=iterations, tolerance=0.0)

    result_new = run_vectorized()
    posterior_old, confusions_old, _ = run_seed()
    max_diff = float(
        max(
            np.abs(result_new.posterior - posterior_old).max(),
            np.abs(result_new.confusions - confusions_old).max(),
        )
    )
    if max_diff > 1e-10:
        raise AssertionError(f"vectorized DS diverged from seed DS: {max_diff}")

    vec_s, seed_s = np.inf, np.inf
    for _ in range(repeats):
        vec_s = min(vec_s, best_of(run_vectorized, 1))
        seed_s = min(seed_s, best_of(run_seed, 1))
    return {
        "config": {"I": instances, "J": annotators, "K": classes,
                   "iterations": iterations},
        "before_ms": seed_s * 1e3,
        "after_ms": vec_s * 1e3,
        "speedup": seed_s / vec_s,
        "max_abs_diff": max_diff,
    }


# --------------------------------------------------------------------- #
# HMM-Crowd/BSC-seq E-round: batched forward–backward vs. per-chain loop
# --------------------------------------------------------------------- #
def bench_forward_backward(instances, classes, t_max, repeats, rng) -> dict:
    lengths = conll_like_lengths(rng, instances, t_max)
    log_emissions = [np.log(rng.random((t, classes)) + 1e-3) for t in lengths]
    transition = rng.dirichlet(np.ones(classes), size=classes)
    initial = rng.dirichlet(np.ones(classes))
    log_transition = np.log(transition)
    log_initial = np.log(initial)

    def run_batched():
        # Padding is part of the E-round work the batched path really does.
        padded = np.zeros((instances, t_max, classes))
        for i, chain in enumerate(log_emissions):
            padded[i, : lengths[i]] = chain
        return batched_forward_backward(padded, log_transition, log_initial, lengths)

    def run_seed():
        gammas, xi_total, total_ll = [], np.zeros((classes, classes)), 0.0
        for chain in log_emissions:
            gamma, xi_sum, log_like = seed_forward_backward(chain, log_transition, log_initial)
            gammas.append(gamma)
            xi_total += xi_sum
            total_ll += log_like
        return gammas, xi_total, total_ll

    gamma_new, xi_new, ll_new = run_batched()
    gammas_old, xi_old, ll_old = run_seed()
    max_diff = float(
        max(
            max(
                np.abs(gamma_new[i, : lengths[i]] - gammas_old[i]).max()
                for i in range(instances)
            ),
            np.abs(xi_new.sum(axis=0) - xi_old).max(),
            abs(ll_new.sum() - ll_old),
        )
    )
    if max_diff > 1e-10:
        raise AssertionError(f"batched forward–backward diverged from seed: {max_diff}")

    batched_s, seed_s = np.inf, np.inf
    for _ in range(repeats):
        batched_s = min(batched_s, best_of(run_batched, 1))
        seed_s = min(seed_s, best_of(run_seed, 1))
    return {
        "config": {"I": instances, "K": classes, "T_max": t_max,
                   "lengths": "geometric(mean≈14.5) clipped to T_max"},
        "before_ms": seed_s * 1e3,
        "after_ms": batched_s * 1e3,
        "speedup": seed_s / batched_s,
        "max_abs_diff": max_diff,
    }


# --------------------------------------------------------------------- #
# GLAD / PM / CATD: sparse-COO kernels vs. pre-PR-3 dense scans
# --------------------------------------------------------------------- #
def bench_glad(instances, annotators, em_iterations, repeats, rng) -> dict:
    labels = make_classification_labels(rng, instances, annotators, classes=2)
    crowd = CrowdLabelMatrix(labels, 2)
    method = GLAD(em_iterations=em_iterations)

    def run_vectorized():
        return method.infer(crowd)

    def run_seed():
        return seed_glad(labels, em_iterations=em_iterations)

    result_new = run_vectorized()
    posterior_old, alpha_old, beta_old = run_seed()
    max_diff = float(
        max(
            np.abs(result_new.posterior - posterior_old).max(),
            np.abs(result_new.extras["alpha"] - alpha_old).max(),
            np.abs(result_new.extras["beta"] - beta_old).max(),
        )
    )
    if max_diff > 1e-10:
        raise AssertionError(f"vectorized GLAD diverged from seed GLAD: {max_diff}")

    vec_s, seed_s = np.inf, np.inf
    for _ in range(repeats):
        vec_s = min(vec_s, best_of(run_vectorized, 1))
        seed_s = min(seed_s, best_of(run_seed, 1))
    return {
        "config": {"I": instances, "J": annotators, "K": 2,
                   "em_iterations": em_iterations, "gradient_steps": 20},
        "before_ms": seed_s * 1e3,
        "after_ms": vec_s * 1e3,
        "speedup": seed_s / vec_s,
        "max_abs_diff": max_diff,
    }


def bench_pm_catd(instances, annotators, classes, repeats, rng) -> dict:
    labels = make_classification_labels(rng, instances, annotators, classes)
    crowd = CrowdLabelMatrix(labels, classes)
    pm = PM()
    catd = CATD()

    def run_vectorized():
        return pm.infer(crowd), catd.infer(crowd)

    def run_seed():
        return seed_pm(labels, classes), seed_catd(labels, classes)

    pm_new, catd_new = run_vectorized()
    (pm_post, pm_weights, pm_iters), (catd_post, catd_weights, catd_iters) = run_seed()
    if pm_new.extras["iterations"] != pm_iters or catd_new.extras["iterations"] != catd_iters:
        raise AssertionError(
            "vectorized PM/CATD convergence diverged from seed: "
            f"PM {pm_new.extras['iterations']} vs {pm_iters}, "
            f"CATD {catd_new.extras['iterations']} vs {catd_iters}"
        )
    max_diff = float(
        max(
            np.abs(pm_new.posterior - pm_post).max(),
            np.abs(pm_new.extras["weights"] - pm_weights).max(),
            np.abs(catd_new.posterior - catd_post).max(),
            np.abs(catd_new.extras["weights"] - catd_weights).max(),
        )
    )
    if max_diff > 1e-10:
        raise AssertionError(f"vectorized PM/CATD diverged from seed: {max_diff}")

    vec_s, seed_s = np.inf, np.inf
    for _ in range(repeats):
        vec_s = min(vec_s, best_of(run_vectorized, 1))
        seed_s = min(seed_s, best_of(run_seed, 1))
    return {
        "config": {"I": instances, "J": annotators, "K": classes,
                   "methods": "PM + CATD, one full run each"},
        "before_ms": seed_s * 1e3,
        "after_ms": vec_s * 1e3,
        "speedup": seed_s / vec_s,
        "max_abs_diff": max_diff,
    }


# --------------------------------------------------------------------- #
# Conv1d training step: width-loop accumulation vs. im2col materialization
# --------------------------------------------------------------------- #
def bench_conv1d(batch, t_max, dim, width, feats, repeats, rng) -> dict:
    x = rng.normal(size=(batch, t_max, dim))
    # Glorot-ish scale keeps activations O(1), as in the real models.
    weight = rng.normal(size=(width * dim, feats)) / np.sqrt(width * dim)
    bias = rng.normal(size=(feats,)) * 0.1

    def run_width_loop():
        xt = Tensor(x, requires_grad=True)
        wt = Tensor(weight, requires_grad=True)
        bt = Tensor(bias, requires_grad=True)
        out = F.conv1d_seq(xt, wt, bt, width=width, pad="same", variant="width_loop")
        (out**2).sum().backward()
        return out.numpy(), xt.grad, wt.grad, bt.grad

    def run_seed():
        return seed_conv1d_train_step(x, weight, bias, width, pad="same")

    new = run_width_loop()
    old = run_seed()
    # The two paths split the width·D reduction differently, so agreement
    # is float64 round-off, not bit-for-bit (see test_conv1d_paths.py).
    max_diff = float(max(np.abs(a - b).max() for a, b in zip(new, old)))
    if max_diff > 1e-9:
        raise AssertionError(f"width-loop conv diverged from im2col conv: {max_diff}")

    loop_s, seed_s = np.inf, np.inf
    for _ in range(repeats):
        loop_s = min(loop_s, best_of(run_width_loop, 1))
        seed_s = min(seed_s, best_of(run_seed, 1))
    return {
        "config": {"B": batch, "T": t_max, "D": dim, "width": width, "F": feats,
                   "pad": "same"},
        "before_ms": seed_s * 1e3,
        "after_ms": loop_s * 1e3,
        "speedup": seed_s / loop_s,
        "max_abs_diff": max_diff,
        # The point of the variant: the (B, T_out, width*D) float64 window
        # buffer the im2col forward AND backward each materialize.
        "buffer_bytes_avoided": int(batch * t_max * width * dim * 8),
    }


# --------------------------------------------------------------------- #
# dtype: float64 reference vs float32 fast-path training epochs
# --------------------------------------------------------------------- #
def _measure_dtype_pair(build, repeats) -> dict:
    """Time one training epoch of ``build(dtype)`` at float64 vs float32.

    ``build`` returns ``(epoch_fn, initial_logits_fn)`` for a freshly
    constructed same-seed model; the logits gate runs on the untrained
    weights (eval mode) before any timing touches the parameters.
    """
    timings, peaks, logits = {}, {}, {}
    for dtype in ("float64", "float32"):
        epoch_fn, logits_fn = build(dtype)
        logits[dtype] = logits_fn()
        epoch_fn()  # warm-up: BLAS paths, allocator pools
        best = np.inf
        for _ in range(repeats):
            best = min(best, best_of(epoch_fn, 1))
        timings[dtype] = best
        tracemalloc.start()
        epoch_fn()
        _, peaks[dtype] = tracemalloc.get_traced_memory()
        tracemalloc.stop()
    max_diff = float(np.abs(logits["float64"] - logits["float32"]).max())
    if max_diff > 1e-2:
        raise AssertionError(
            f"float32 twin diverged from float64 reference at init: {max_diff}"
        )
    return {
        "before_ms": timings["float64"] * 1e3,
        "after_ms": timings["float32"] * 1e3,
        "speedup": timings["float64"] / timings["float32"],
        "before_peak_bytes": int(peaks["float64"]),
        "after_peak_bytes": int(peaks["float32"]),
        "max_abs_logit_diff": max_diff,
    }


def bench_dtype(text_cfg, crnn_cfg, repeats, rng) -> dict:
    """Float32 fast path vs float64 reference on both paper networks."""
    out = {}

    # --- Kim TextCNN sentiment epoch --------------------------------- #
    tc = text_cfg
    embeddings = rng.normal(size=(tc["vocab"], tc["dim"])) * 0.1
    tokens = rng.integers(0, tc["vocab"], size=(tc["instances"], tc["t_max"]))
    lengths = conll_like_lengths(rng, tc["instances"], tc["t_max"])
    targets = np.eye(tc["classes"])[rng.integers(0, tc["classes"], size=tc["instances"])]

    def build_text_cnn(dtype):
        config = TextCNNConfig(
            num_classes=tc["classes"], feature_maps=tc["feature_maps"], dtype=dtype
        )
        model = TextCNN(embeddings, config, np.random.default_rng(42))
        trainer = TrainerConfig(
            epochs=1, batch_size=tc["batch_size"], optimizer="adadelta",
            learning_rate=1.0, lr_decay_every=None, dtype=dtype,
        )

        def epoch():
            model.train()
            optimizer, _ = build_optimizer(model.parameters(), trainer)
            run_classification_epoch(
                model, optimizer, tokens, lengths, targets,
                np.random.default_rng(7), trainer,
            )

        def initial_logits():
            model.eval()
            with no_grad():
                return model.logits(tokens[: tc["batch_size"]],
                                    lengths[: tc["batch_size"]]).numpy()

        return epoch, initial_logits

    out["text_cnn"] = {
        "config": {"I": tc["instances"], "T": tc["t_max"], "V": tc["vocab"],
                   "D": tc["dim"], "feature_maps": tc["feature_maps"],
                   "K": tc["classes"], "batch_size": tc["batch_size"]},
        **_measure_dtype_pair(build_text_cnn, repeats),
    }

    # --- CNN+GRU tagger epoch ----------------------------------------- #
    nc = crnn_cfg
    ner_embeddings = rng.normal(size=(nc["vocab"], nc["dim"])) * 0.1
    ner_tokens = rng.integers(0, nc["vocab"], size=(nc["instances"], nc["t_max"]))
    ner_lengths = conll_like_lengths(rng, nc["instances"], nc["t_max"])
    ner_targets = np.eye(nc["classes"])[
        rng.integers(0, nc["classes"], size=(nc["instances"], nc["t_max"]))
    ]

    def build_crnn(dtype):
        config = NERTaggerConfig(
            num_classes=nc["classes"], conv_features=nc["conv_features"],
            gru_hidden=nc["gru_hidden"], dtype=dtype,
        )
        model = NERTagger(ner_embeddings, config, np.random.default_rng(42))
        trainer = TrainerConfig(
            epochs=1, batch_size=nc["batch_size"], optimizer="adam",
            learning_rate=1e-3, lr_decay_every=None, dtype=dtype,
        )

        def epoch():
            model.train()
            optimizer, _ = build_optimizer(model.parameters(), trainer)
            run_sequence_epoch(
                model, optimizer, ner_tokens, ner_lengths, ner_targets,
                np.random.default_rng(7), trainer,
            )

        def initial_logits():
            model.eval()
            with no_grad():
                return model.logits(ner_tokens[: nc["batch_size"]],
                                    ner_lengths[: nc["batch_size"]]).numpy()

        return epoch, initial_logits

    out["crnn"] = {
        "config": {"I": nc["instances"], "T": nc["t_max"], "V": nc["vocab"],
                   "D": nc["dim"], "conv_features": nc["conv_features"],
                   "gru_hidden": nc["gru_hidden"], "K": nc["classes"],
                   "batch_size": nc["batch_size"]},
        **_measure_dtype_pair(build_crnn, repeats),
    }
    return out


# --------------------------------------------------------------------- #
# Streaming truth inference: stepwise EM vs. naive full recompute per batch
# --------------------------------------------------------------------- #
def bench_streaming(instances, annotators, classes, batches, iterations, repeats, rng) -> dict:
    labels = make_classification_labels(rng, instances, annotators, classes)
    blocks = np.array_split(labels, batches, axis=0)

    def run_streaming():
        stream = StreamingDawidSkene(max_iterations=iterations, tolerance=1e-6)
        per_update = []
        for block in blocks:
            start = time.perf_counter()
            stream.partial_fit(CrowdLabelMatrix(block, classes))
            stream.result()  # posteriors over everything seen, every batch
            per_update.append(time.perf_counter() - start)
        return stream, per_update

    def run_seed():
        per_update, final = [], None
        recompute = seed_streaming_full_recompute(
            blocks, classes, max_iterations=iterations, tolerance=1e-6
        )
        for _ in range(batches):
            start = time.perf_counter()
            final = next(recompute)
            per_update.append(time.perf_counter() - start)
        return final, per_update

    # The replay contract: no-decay stream + convergence == full-crowd DS.
    stream, _ = run_streaming()
    converged = stream.fit_to_convergence()
    seed_posterior, seed_confusions, _ = seed_dawid_skene(
        labels, classes, max_iterations=iterations, tolerance=1e-6
    )
    max_diff = float(
        max(
            np.abs(converged.posterior - seed_posterior).max(),
            np.abs(converged.confusions - seed_confusions).max(),
        )
    )
    if max_diff > 1e-8:
        raise AssertionError(f"streaming replay diverged from full-crowd DS: {max_diff}")

    stream_s, seed_s = np.inf, np.inf
    stream_updates = seed_updates = None
    for _ in range(repeats):
        _, per_update = run_streaming()
        if sum(per_update) < stream_s:
            stream_s, stream_updates = sum(per_update), per_update
        _, per_update = run_seed()
        if sum(per_update) < seed_s:
            seed_s, seed_updates = sum(per_update), per_update
    return {
        "config": {"I": instances, "J": annotators, "K": classes,
                   "batches": batches, "iterations": iterations,
                   "stream": "whole crowd ingested batch by batch"},
        "before_ms": seed_s * 1e3,
        "after_ms": stream_s * 1e3,
        "speedup": seed_s / stream_s,
        "max_abs_diff": max_diff,
        # Per-update scaling: the naive side's last update re-runs EM over
        # the whole stream; the streaming side's stays batch-sized.
        "before_first_update_ms": seed_updates[0] * 1e3,
        "before_last_update_ms": seed_updates[-1] * 1e3,
        "after_first_update_ms": stream_updates[0] * 1e3,
        "after_last_update_ms": stream_updates[-1] * 1e3,
    }


# --------------------------------------------------------------------- #
# Sharded truth inference: out-of-core map-reduce DS vs. in-memory batch DS
# --------------------------------------------------------------------- #
def bench_sharded(instances, annotators, classes, iterations, shards, repeats, rng) -> dict:
    labels = make_classification_labels(rng, instances, annotators, classes)
    rows, cols = np.nonzero(labels != MISSING)
    # Observation-major (N, 3) layout: a shard is one contiguous row slice.
    coo = np.stack([rows, cols, labels[rows, cols]], axis=1).astype(np.int64)

    # Shard layout: near-equal contiguous row ranges, COO slice bounds
    # precomputed (rows are sorted, so each shard is one contiguous slice).
    row_bounds = partition_bounds(instances, shards)
    coo_bounds = [
        (int(np.searchsorted(rows, lo)), int(np.searchsorted(rows, hi)))
        for lo, hi in row_bounds
    ]
    largest_shard_coo_bytes = max((hi - lo) for lo, hi in coo_bounds) * 3 * 8

    with tempfile.TemporaryDirectory() as tmp:
        dense_path = Path(tmp) / "labels.npy"
        coo_path = Path(tmp) / "labels_coo.npy"
        np.save(dense_path, labels)
        np.save(coo_path, coo)

        method = DawidSkene(max_iterations=iterations, tolerance=0.0)
        sharded = ShardedDawidSkene(max_iterations=iterations, tolerance=0.0)

        def run_batch():
            # The in-memory path: the whole label matrix (and its cached
            # views) lives in RAM for the entire run.
            full = CrowdLabelMatrix(np.load(dense_path), classes)
            return method.infer(full)

        # The memmap handle is opened once; the data stays on disk and only
        # the active shard's triples are ever materialized in RAM per pass.
        on_disk = np.load(coo_path, mmap_mode="r")

        def shard_source():
            for (row_lo, row_hi), (lo, hi) in zip(row_bounds, coo_bounds):
                block = np.array(on_disk[lo:hi])
                yield SparseLabelShard(
                    block[:, 0] - row_lo, block[:, 1], block[:, 2],
                    num_instances=row_hi - row_lo,
                    num_annotators=annotators,
                    num_classes=classes,
                )

        def run_sharded_out_of_core():
            return sharded.infer_sharded(shard_source)

        result_batch = run_batch()
        result_sharded = run_sharded_out_of_core()
        max_diff = float(
            max(
                np.abs(result_sharded.posterior - result_batch.posterior).max(),
                np.abs(result_sharded.confusions - result_batch.confusions).max(),
            )
        )
        if max_diff > 1e-9:
            raise AssertionError(f"sharded DS diverged from batch DS: {max_diff}")
        if result_sharded.extras["iterations"] != result_batch.extras["iterations"]:
            raise AssertionError("sharded DS iteration count diverged from batch DS")

        batch_s, sharded_s = np.inf, np.inf
        for _ in range(repeats):
            batch_s = min(batch_s, best_of(run_batch, 1))
            sharded_s = min(sharded_s, best_of(run_sharded_out_of_core, 1))

        peaks = {}
        for label, fn in (("batch", run_batch), ("sharded", run_sharded_out_of_core)):
            tracemalloc.start()
            fn()
            _, peaks[label] = tracemalloc.get_traced_memory()
            tracemalloc.stop()

    return {
        "config": {"I": instances, "J": annotators, "K": classes,
                   "iterations": iterations, "shards": shards,
                   "layout": "contiguous COO shards memmapped from disk"},
        "before_ms": batch_s * 1e3,
        "after_ms": sharded_s * 1e3,
        "speedup": batch_s / sharded_s,
        "max_abs_diff": max_diff,
        # The memory story: the batch peak holds the whole crowd, the
        # sharded peak holds one shard plus the O(I·K) posterior blocks.
        "before_peak_bytes": int(peaks["batch"]),
        "after_peak_bytes": int(peaks["sharded"]),
        "crowd_label_bytes": int(labels.nbytes),
        "crowd_coo_bytes": int(coo.nbytes),
        "largest_shard_coo_bytes": int(largest_shard_coo_bytes),
        "posterior_bytes": int(instances * classes * 8),
    }


# --------------------------------------------------------------------- #
# Multi-core sharded DS: process-pool map over on-disk shard handles
# --------------------------------------------------------------------- #
def bench_sharded_parallel(
    instances, annotators, classes, iterations, shards, repeats, worker_counts, rng
) -> dict:
    labels = make_classification_labels(rng, instances, annotators, classes)
    crowd = CrowdLabelMatrix(labels, classes)

    method = DawidSkene(max_iterations=iterations, tolerance=0.0)
    sharded = ShardedDawidSkene(max_iterations=iterations, tolerance=0.0)

    with tempfile.TemporaryDirectory() as tmp:
        # One on-disk shard file + row-range handles; workers memmap the
        # file themselves, only the handles cross the pickle boundary.
        handles = save_shard_handles(crowd, Path(tmp) / "crowd.npy", shards)

        def run_batch():
            return method.infer(crowd)

        def run_serial_sharded():
            return sharded.infer_sharded(handles)

        # Equivalence gate before timing anything: serial sharded must
        # match batch, every process run must be bit-identical to serial.
        result_batch = run_batch()
        result_serial = run_serial_sharded()
        max_diff = float(
            max(
                np.abs(result_serial.posterior - result_batch.posterior).max(),
                np.abs(result_serial.confusions - result_batch.confusions).max(),
            )
        )
        if max_diff > 1e-9:
            raise AssertionError(f"sharded DS diverged from batch DS: {max_diff}")
        if result_serial.extras["iterations"] != result_batch.extras["iterations"]:
            raise AssertionError("sharded DS iteration count diverged from batch DS")

        batch_s, serial_s = np.inf, np.inf
        worker_s = {w: np.inf for w in worker_counts}
        for _ in range(repeats):
            batch_s = min(batch_s, best_of(run_batch, 1))
            serial_s = min(serial_s, best_of(run_serial_sharded, 1))
        for w in worker_counts:
            # One pool per worker count, reused across repeats: fork cost
            # and the workers' shard-handle caches amortize over the
            # repeats, as they would over the EM rounds of a real run.
            with ProcessPoolExecutor(max_workers=w) as pool:
                def run_parallel():
                    return sharded.infer_sharded(handles, executor=pool)

                result_parallel = run_parallel()
                if not np.array_equal(result_parallel.posterior, result_serial.posterior):
                    raise AssertionError(
                        f"{w}-worker sharded DS not bit-identical to serial sharded DS"
                    )
                for _ in range(repeats):
                    worker_s[w] = min(worker_s[w], best_of(run_parallel, 1))

    return {
        "config": {"I": instances, "J": annotators, "K": classes,
                   "iterations": iterations, "shards": shards,
                   "worker_counts": list(worker_counts),
                   "cpu_count": os.cpu_count(),
                   "layout": "on-disk row-range ShardHandles, one npy file"},
        "batch_ms": batch_s * 1e3,
        "serial_sharded_ms": serial_s * 1e3,
        "workers": {
            str(w): {
                "ms": worker_s[w] * 1e3,
                "speedup_vs_batch": batch_s / worker_s[w],
                "speedup_vs_serial_sharded": serial_s / worker_s[w],
            }
            for w in worker_counts
        },
        "max_abs_diff": max_diff,
        "note": "speedup_vs_batch > 2 expects >= 4 physical cores; "
                "cpu_count above records what this box actually has",
    }


# --------------------------------------------------------------------- #
# Serving: CrowdService under bursty many-dataset traffic with eviction
# --------------------------------------------------------------------- #
def bench_serving(datasets, config, queries_per_update, max_resident, repeats, seed) -> dict:
    workload = build_serving_workload(
        seed=seed, datasets=datasets, config=config, queries_per_update=queries_per_update
    )
    overrides = dict(inner_sweeps=1)

    # Recovery gate before any timing: checkpoint mid-schedule, crash,
    # restart on the same root, replay each dataset's tail from the
    # durable cursor — must match uninterrupted per-dataset streams.
    expected = {}
    for dataset_id in workload.datasets:
        stream = StreamingDawidSkene(**overrides)
        for batch in workload.updates_for(dataset_id):
            stream.partial_fit(batch)
        expected[dataset_id] = stream.result()
    updates = [event for event in workload.events if event.kind == "update"]
    with tempfile.TemporaryDirectory() as tmp:
        root = Path(tmp) / "gate"
        service = CrowdService(root, method="DS", max_resident=max_resident, **overrides)
        for event in updates[: len(updates) // 2]:
            service.partial_fit(event.dataset_id, event.batch)
        service.checkpoint()
        del service  # crash: in-memory state gone, the files survive
        revived = CrowdService(root, method="DS", max_resident=max_resident, **overrides)
        recovery_diff = 0.0
        for dataset_id in workload.datasets:
            cursor = (
                revived.cursor(dataset_id) if dataset_id in revived.datasets() else 0
            )
            for batch in workload.updates_for(dataset_id)[cursor:]:
                revived.partial_fit(dataset_id, batch)
        for dataset_id in workload.datasets:
            recovery_diff = max(
                recovery_diff,
                float(
                    np.abs(
                        revived.query(dataset_id).posterior
                        - expected[dataset_id].posterior
                    ).max(initial=0.0)
                ),
            )
        if recovery_diff > 1e-10:
            raise AssertionError(
                f"service recovery diverged from uninterrupted streams: {recovery_diff}"
            )

    def run_schedule():
        with tempfile.TemporaryDirectory() as run_tmp:
            service = CrowdService(
                Path(run_tmp), method="DS", max_resident=max_resident, **overrides
            )
            update_seconds = 0.0
            latencies = []
            for event in workload.events:
                start = time.perf_counter()
                if event.kind == "update":
                    service.partial_fit(event.dataset_id, event.batch)
                    update_seconds += time.perf_counter() - start
                else:
                    service.query(event.dataset_id)
                    latencies.append(time.perf_counter() - start)
            return update_seconds, latencies, dict(service.stats)

    update_s = np.inf
    all_latencies = []
    stats = {}
    for _ in range(repeats):
        update_seconds, latencies, stats = run_schedule()
        update_s = min(update_s, update_seconds)
        all_latencies.extend(latencies)  # pooled: more draws for the p99
    latency_ms = (
        np.asarray(all_latencies) * 1e3 if all_latencies else np.zeros(1)
    )
    return {
        "config": {
            "datasets": datasets,
            "I_per_dataset": config.instances,
            "J": config.annotators,
            "K": config.num_classes,
            "batch_size": config.batch_size,
            "queries_per_update": queries_per_update,
            "max_resident": max_resident,
            "method": "DS (inner_sweeps=1)",
            "arrivals": "burst/dribble/quiet ticks, random dataset per tick",
        },
        "update_count": workload.update_count,
        "query_count": workload.query_count,
        "updates_per_sec": workload.update_count / update_s,
        "update_total_ms": update_s * 1e3,
        "query_p50_ms": float(np.percentile(latency_ms, 50)),
        "query_p99_ms": float(np.percentile(latency_ms, 99)),
        "recovery_max_abs_diff": recovery_diff,
        "evictions": stats["evictions"],
        "rehydrations": stats["rehydrations"],
        "checkpoints": stats["checkpoints"],
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n", 1)[0])
    parser.add_argument("--smoke", action="store_true",
                        help="tiny sizes + few repeats; finishes well under 30 s")
    parser.add_argument("--output", type=Path,
                        default=REPO_ROOT / "BENCH_hotpaths.json")
    parser.add_argument("--repeats", type=int, default=None,
                        help="override best-of-N repeat count")
    parser.add_argument("--tag", default=None,
                        help="also archive a full run to benchmarks/history/<tag>.json")
    parser.add_argument("--workers", type=int, nargs="+", default=None, metavar="N",
                        help="worker counts for the sharded_parallel sweep "
                             "(default: 1 2 4 full, 2 smoke)")
    args = parser.parse_args(argv)

    rng = np.random.default_rng(20260729)
    if args.smoke:
        repeats = args.repeats or 3
        gru_cfg = dict(batch=16, t_max=30, hidden=32, in_dim=64)
        em_cfg = dict(instances=60, annotators=47, classes=9, t_max=30)
        ds_cfg = dict(instances=300, annotators=47, classes=9, iterations=10)
        fb_cfg = dict(instances=60, classes=9, t_max=30)
        glad_cfg = dict(instances=200, annotators=47, em_iterations=3)
        pm_catd_cfg = dict(instances=300, annotators=47, classes=9)
        conv_cfg = dict(batch=8, t_max=20, dim=64, width=5, feats=16)
        dtype_text_cfg = dict(instances=24, t_max=20, vocab=200, dim=32,
                              feature_maps=8, classes=5, batch_size=12)
        dtype_crnn_cfg = dict(instances=12, t_max=20, vocab=200, dim=32,
                              conv_features=32, gru_hidden=16, classes=9, batch_size=6)
        dtype_repeats = 2
        streaming_cfg = dict(instances=200, annotators=47, classes=3, batches=5, iterations=8)
        sharded_cfg = dict(instances=400, annotators=47, classes=9, iterations=8, shards=4)
        sharded_paper_cfg = dict(instances=200, annotators=47, classes=9, iterations=5, shards=2)
        parallel_cfg = dict(instances=400, annotators=47, classes=9, iterations=6,
                            shards=4, worker_counts=args.workers or [2])
        parallel_repeats = 1
        serving_cfg = dict(
            datasets=3,
            config=StreamScenarioConfig(
                instances=40, annotators=8, batch_size=10,
                mean_labels_per_instance=3.0,
            ),
            queries_per_update=1.0, max_resident=2, seed=11,
        )
        serving_repeats = 2
    else:
        repeats = args.repeats or 7
        # Paper scale: tagger batch 32, T=50, GRU hidden 50, conv width 512
        # features feeding the GRU; CoNLL AMT crowd has 47 annotators.
        gru_cfg = dict(batch=32, t_max=50, hidden=50, in_dim=512)
        em_cfg = dict(instances=300, annotators=47, classes=9, t_max=50)
        ds_cfg = dict(instances=2000, annotators=47, classes=9, iterations=50)
        fb_cfg = dict(instances=300, classes=9, t_max=50)
        glad_cfg = dict(instances=2000, annotators=47, em_iterations=10)
        pm_catd_cfg = dict(instances=2000, annotators=47, classes=9)
        # Tagger embedding scale: width-5 conv over 300-d GloVe vectors.
        conv_cfg = dict(batch=32, t_max=50, dim=300, width=5, feats=100)
        # Paper-scale epochs, instance counts trimmed so both dtype twins
        # finish in seconds: the per-step work (conv/GRU GEMM shapes) is
        # exactly the tagger/sentiment training step.
        dtype_text_cfg = dict(instances=200, t_max=50, vocab=5000, dim=300,
                              feature_maps=100, classes=5, batch_size=50)
        dtype_crnn_cfg = dict(instances=64, t_max=50, vocab=5000, dim=300,
                              conv_features=512, gru_hidden=50, classes=9, batch_size=32)
        dtype_repeats = 3
        # A day of label traffic arriving in 10 drops at sentiment scale.
        streaming_cfg = dict(instances=1500, annotators=47, classes=5, batches=10, iterations=30)
        # Out-of-core DS. Headline at serving scale (10× the paper's
        # sentiment crowd) where the per-pass shard rebuild amortizes;
        # the paper-scale config of the dawid_skene section is recorded
        # alongside under "paper_scale".
        sharded_cfg = dict(instances=20000, annotators=47, classes=9, iterations=20, shards=4)
        sharded_paper_cfg = dict(instances=2000, annotators=47, classes=9, iterations=50, shards=2)
        # Multi-core sweep at I >= 1e5, where per-round compute dwarfs the
        # per-pass broadcast/submit overhead. The >2x-vs-batch target needs
        # >= 4 physical cores; the payload records cpu_count so a 1-core
        # box's numbers read as what they are.
        parallel_cfg = dict(instances=100000, annotators=47, classes=9, iterations=20,
                            shards=4, worker_counts=args.workers or [1, 2, 4])
        parallel_repeats = 3
        # Twelve sentiment-scale datasets behind a 4-dataset resident
        # budget: two thirds of the traffic lands on evicted datasets, so
        # checkpoint/rehydrate churn is part of every measured number.
        serving_cfg = dict(
            datasets=12,
            config=StreamScenarioConfig(instances=400, annotators=20, batch_size=40),
            queries_per_update=2.0, max_resident=4, seed=11,
        )
        serving_repeats = 3

    started = time.time()
    results = {
        "bench": "hotpaths",
        "smoke": bool(args.smoke),
        "unix_time": int(started),
        "gru": bench_gru(repeats=repeats, rng=rng, **gru_cfg),
        "sequence_em": bench_sequence_em(repeats=repeats, rng=rng, **em_cfg),
        "dawid_skene": bench_dawid_skene(repeats=max(repeats // 2, 1), rng=rng, **ds_cfg),
        "forward_backward": bench_forward_backward(repeats=repeats, rng=rng, **fb_cfg),
        "glad": bench_glad(repeats=max(repeats // 2, 1), rng=rng, **glad_cfg),
        "pm_catd": bench_pm_catd(repeats=max(repeats // 2, 1), rng=rng, **pm_catd_cfg),
        "conv1d": bench_conv1d(repeats=repeats, rng=rng, **conv_cfg),
        "dtype": bench_dtype(dtype_text_cfg, dtype_crnn_cfg,
                             repeats=dtype_repeats, rng=rng),
        "streaming": bench_streaming(repeats=max(repeats // 2, 1), rng=rng, **streaming_cfg),
        # Full repeats here: the sharded comparison is the noisiest (two
        # allocation-heavy sides), so best-of needs more draws.
        "sharded": bench_sharded(repeats=repeats, rng=rng, **sharded_cfg),
    }
    results["sharded"]["paper_scale"] = bench_sharded(
        repeats=repeats, rng=rng, **sharded_paper_cfg
    )
    results["sharded_parallel"] = bench_sharded_parallel(
        repeats=parallel_repeats, rng=rng, **parallel_cfg
    )
    results["serving"] = bench_serving(repeats=serving_repeats, **serving_cfg)
    results["wall_seconds"] = round(time.time() - started, 2)

    args.output.write_text(json.dumps(results, indent=2) + "\n")
    for label, section in (
        ("GRU fwd+bwd", "gru"),
        ("sequence EM", "sequence_em"),
        ("Dawid–Skene", "dawid_skene"),
        ("forward–bwd", "forward_backward"),
        ("GLAD EM    ", "glad"),
        ("PM + CATD  ", "pm_catd"),
        ("conv1d step", "conv1d"),
        ("streaming  ", "streaming"),
        ("sharded DS ", "sharded"),
    ):
        entry = results[section]
        print(f"{label} : {entry['before_ms']:8.2f} ms → {entry['after_ms']:8.2f} ms "
              f"({entry['speedup']:.2f}x, diff {entry['max_abs_diff']:.1e})")
    for label, network in (("TextCNN", "text_cnn"), ("CRNN tagger", "crnn")):
        entry = results["dtype"][network]
        print(f"  dtype {label}: f64 {entry['before_ms']:.1f} ms → f32 "
              f"{entry['after_ms']:.1f} ms ({entry['speedup']:.2f}x), peak "
              f"{entry['before_peak_bytes'] / 2**20:.1f} → "
              f"{entry['after_peak_bytes'] / 2**20:.1f} MiB, "
              f"init-logit diff {entry['max_abs_logit_diff']:.1e}")
    entry = results["streaming"]
    print("  streaming per-update (first → last): "
          f"naive {entry['before_first_update_ms']:.2f} → {entry['before_last_update_ms']:.2f} ms, "
          f"stream {entry['after_first_update_ms']:.2f} → {entry['after_last_update_ms']:.2f} ms")
    entry = results["sharded"]
    print("  sharded peak memory: in-memory batch "
          f"{entry['before_peak_bytes'] / 1024:.0f} KiB → out-of-core "
          f"{entry['after_peak_bytes'] / 1024:.0f} KiB "
          f"(crowd {entry['crowd_label_bytes'] / 1024:.0f} KiB on disk, "
          f"largest shard {entry['largest_shard_coo_bytes'] / 1024:.0f} KiB)")
    paper = entry["paper_scale"]
    print("  sharded at paper scale (I="
          f"{paper['config']['I']}): {paper['before_ms']:.2f} ms → "
          f"{paper['after_ms']:.2f} ms, peak "
          f"{paper['before_peak_bytes'] / 1024:.0f} → "
          f"{paper['after_peak_bytes'] / 1024:.0f} KiB")
    entry = results["sharded_parallel"]
    sweep = ", ".join(
        f"{w}w {item['ms']:.0f} ms ({item['speedup_vs_batch']:.2f}x vs batch)"
        for w, item in entry["workers"].items()
    )
    print(f"  sharded parallel (I={entry['config']['I']}, "
          f"{entry['config']['cpu_count']} cores): "
          f"batch {entry['batch_ms']:.0f} ms, serial sharded "
          f"{entry['serial_sharded_ms']:.0f} ms, {sweep}")
    entry = results["serving"]
    print(f"  serving ({entry['config']['datasets']} datasets, resident "
          f"{entry['config']['max_resident']}): "
          f"{entry['updates_per_sec']:.0f} updates/s, query p50 "
          f"{entry['query_p50_ms']:.2f} ms / p99 {entry['query_p99_ms']:.2f} ms, "
          f"{entry['evictions']} evictions, recovery diff "
          f"{entry['recovery_max_abs_diff']:.1e}")
    print(f"wrote {args.output}")
    if args.tag:
        if args.smoke:
            print("--tag ignored for --smoke runs (history tracks full runs only)")
        else:
            HISTORY_DIR.mkdir(exist_ok=True)
            history_path = HISTORY_DIR / f"{args.tag}.json"
            history_path.write_text(json.dumps(results, indent=2) + "\n")
            print(f"archived {history_path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
